//! A tiny deterministic JSON value + writer.
//!
//! The batch report must be byte-identical across runs and thread counts,
//! so rather than depend on an (unavailable) serde stack we build the
//! document explicitly: object members keep insertion order, floats print
//! through Rust's shortest-roundtrip `Display` (stable for equal bit
//! patterns), and strings are escaped per RFC 8259.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// integer (i64 covers every counter we emit; u64 counters are
    /// range-checked on construction)
    Int(i64),
    /// finite float; non-finite values serialize as `null`
    Float(f64),
    /// string
    Str(String),
    /// array
    Arr(Vec<Json>),
    /// object with insertion-ordered members
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a member to an object (panics on non-objects — builder use
    /// only).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Serialize with two-space indentation, deterministically.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (k, it) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    it.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (k, (key, val)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    val.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (k, it) in items.iter().enumerate() {
                    if k > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    it.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (k, (key, val)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    val.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact (no whitespace), deterministic serialization; `to_string()`
/// comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Display prints the shortest representation that round-trips; force a
    // decimal point so integral floats stay floats on re-read.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(i64::try_from(v).expect("counter exceeds i64::MAX"))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_shape() {
        let j = Json::obj()
            .field("name", "kernel1")
            .field("cycles", 1234u64)
            .field("speedup", 1.5f64)
            .field("ms", Json::Null)
            .field("flags", Json::Arr(vec![Json::Bool(true), Json::Int(-2)]));
        assert_eq!(
            j.to_string(),
            r#"{"name":"kernel1","cycles":1234,"speedup":1.5,"ms":null,"flags":[true,-2]}"#
        );
    }

    #[test]
    fn floats_keep_a_point_and_escape_works() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).to_string(), r#""a\"b\n""#);
    }

    #[test]
    fn pretty_is_stable() {
        let j = Json::obj().field("a", 1i64).field("b", Json::Arr(vec![]));
        let p = j.to_pretty();
        assert_eq!(p, "{\n  \"a\": 1,\n  \"b\": []\n}\n");
        assert_eq!(p, j.to_pretty());
    }
}
