//! # slc-sat — a small CDCL SAT solver with unsat cores
//!
//! In-workspace solver backing the exact modulo scheduler (`slc-exact`).
//! Like the proptest/criterion shims, it exists because the build
//! environment has no registry access; unlike them it is a real solver:
//! two-watched-literal propagation, first-UIP clause learning, Luby
//! restarts, and — the part the certificate machinery depends on —
//! **unsat-core extraction**: every learned clause carries the set of
//! original clause ids it was resolved from, so a refutation names the
//! exact subset of input clauses that is jointly unsatisfiable.
//!
//! Everything is deterministic: no randomness, no wall clock, ties broken
//! by variable index. The same instance always produces the same model or
//! the same core, which is what lets solver statistics flow into the
//! byte-identical batch report.
//!
//! ```
//! use slc_sat::{Lit, Outcome, Solver};
//! let mut s = Solver::new();
//! s.add_clause(&[Lit::pos(0), Lit::pos(1)]);
//! s.add_clause(&[Lit::neg(0)]);
//! match s.solve() {
//!     Outcome::Sat(m) => assert!(m[1] && !m[0]),
//!     Outcome::Unsat(_) => unreachable!(),
//! }
//! ```

use std::collections::BTreeSet;

/// Variable index (0-based, dense).
pub type Var = usize;

/// A literal: a variable with a polarity, packed as `2·var + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit((v as u32) << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(((v as u32) << 1) | 1)
    }

    /// The variable this literal tests.
    pub fn var(self) -> Var {
        (self.0 >> 1) as usize
    }

    /// True for `¬v` literals.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for watch lists.
    fn idx(self) -> usize {
        self.0 as usize
    }

    /// Truth value under a complete assignment.
    pub fn eval(self, model: &[bool]) -> bool {
        model[self.var()] != self.is_neg()
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var())
        } else {
            write!(f, "x{}", self.var())
        }
    }
}

/// Result of [`Solver::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Satisfiable, with one model (`model[v]` = assigned value of `v`).
    Sat(Vec<bool>),
    /// Unsatisfiable, with an unsat core: a sorted set of original clause
    /// ids (as returned by [`Solver::add_clause`]) that is jointly
    /// unsatisfiable.
    Unsat(Vec<usize>),
}

impl Outcome {
    /// True for [`Outcome::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }
}

/// Deterministic search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// branching decisions made
    pub decisions: u64,
    /// literals enqueued by unit propagation
    pub propagations: u64,
    /// conflicts analyzed
    pub conflicts: u64,
    /// Luby restarts performed
    pub restarts: u64,
    /// clauses learned
    pub learned: u64,
}

/// One stored clause (original or learned).
struct Clause {
    lits: Vec<Lit>,
    /// sorted original clause ids this clause is derived from (an original
    /// clause's origin set is just itself)
    origins: Vec<usize>,
}

/// Conflict-driven clause-learning solver. Build with [`Solver::new`],
/// add clauses, then call [`Solver::solve`] (idempotent — the outcome is
/// memoized).
pub struct Solver {
    clauses: Vec<Clause>,
    /// ids of original clauses (prefix of `clauses`)
    n_original: usize,
    /// indices of active unit clauses, enqueued at level 0
    units: Vec<usize>,
    /// watch lists: literal index → clause indices watching it
    watches: Vec<Vec<usize>>,
    assigns: Vec<Option<bool>>,
    /// saved phase per variable (last assigned polarity; initially false)
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    root_unsat: Option<Vec<usize>>,
    memo: Option<Outcome>,
    stats: Stats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(mut x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

/// Conflicts per Luby unit.
const RESTART_UNIT: u64 = 64;

impl Solver {
    /// An empty instance.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            n_original: 0,
            units: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            root_unsat: None,
            memo: None,
            stats: Stats::default(),
        }
    }

    /// Number of variables (highest mentioned + 1).
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    fn grow_to(&mut self, v: Var) {
        while self.assigns.len() <= v {
            self.assigns.push(None);
            self.phase.push(false);
            self.level.push(0);
            self.reason.push(None);
            self.activity.push(0.0);
            self.watches.push(Vec::new());
            self.watches.push(Vec::new());
        }
    }

    /// Add a clause (a disjunction of literals) and return its id.
    /// Duplicate literals are removed; tautologies are accepted but never
    /// constrain the search. The empty clause makes the instance
    /// trivially unsatisfiable with core `[id]`.
    pub fn add_clause(&mut self, lits: &[Lit]) -> usize {
        assert!(self.memo.is_none(), "add_clause after solve");
        let id = self.clauses.len();
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        let tautology = ls.windows(2).any(|w| w[0].var() == w[1].var());
        if let Some(&m) = ls.iter().map(|l| l.var()).max().as_ref() {
            self.grow_to(m);
        }
        if !tautology {
            match ls.len() {
                0 => {
                    if self.root_unsat.is_none() {
                        self.root_unsat = Some(vec![id]);
                    }
                }
                1 => self.units.push(id),
                _ => {
                    self.watches[ls[0].idx()].push(id);
                    self.watches[ls[1].idx()].push(id);
                }
            }
        }
        // tautologies are stored (for id stability) but never attached
        self.clauses.push(Clause {
            lits: ls,
            origins: vec![id],
        });
        self.n_original = self.clauses.len();
        id
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assigns[l.var()].map(|b| b != l.is_neg())
    }

    /// Assign `p` true. Only call when `p` is unassigned.
    fn enqueue(&mut self, p: Lit, reason: Option<usize>) {
        debug_assert!(self.lit_value(p).is_none());
        let v = p.var();
        self.assigns[v] = Some(!p.is_neg());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(p);
        if reason.is_some() {
            self.stats.propagations += 1;
        }
    }

    /// Two-watched-literal BCP. Returns a conflicting clause index.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = p.negate();
            let watchers = std::mem::take(&mut self.watches[false_lit.idx()]);
            let mut kept = Vec::with_capacity(watchers.len());
            let mut conflict = None;
            for (wi, &ci) in watchers.iter().enumerate() {
                if conflict.is_some() {
                    kept.push(ci);
                    continue;
                }
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == Some(true) {
                    kept.push(ci);
                    continue;
                }
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let lk = self.clauses[ci].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        self.clauses[ci].lits.swap(1, k);
                        let w = self.clauses[ci].lits[1];
                        self.watches[w.idx()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                kept.push(ci);
                if self.lit_value(first) == Some(false) {
                    conflict = Some(ci);
                    // requeue the rest of this watch list untouched
                    let _ = wi;
                } else {
                    self.enqueue(first, Some(ci));
                }
            }
            self.watches[false_lit.idx()] = kept;
            if let Some(ci) = conflict {
                self.qhead = self.trail.len();
                return Some(ci);
            }
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay(&mut self) {
        self.var_inc /= 0.95;
    }

    /// Union the origin closure of a level-0 assigned variable into `out`
    /// (the reason chain that forced it).
    fn level0_origins(&self, v0: Var, out: &mut BTreeSet<usize>) {
        let mut stack = vec![v0];
        let mut seen = vec![false; self.num_vars()];
        while let Some(v) = stack.pop() {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            if let Some(r) = self.reason[v] {
                out.extend(self.clauses[r].origins.iter().copied());
                for &q in &self.clauses[r].lits {
                    if q.var() != v {
                        stack.push(q.var());
                    }
                }
            }
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first, second-highest-level literal second), the backjump
    /// level, and the origin set of the resolution.
    fn analyze(&mut self, mut confl: usize) -> (Vec<Lit>, u32, Vec<usize>) {
        let cur = self.decision_level();
        let mut learnt: Vec<Lit> = Vec::new();
        let mut origins: BTreeSet<usize> = BTreeSet::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            origins.extend(self.clauses[confl].origins.iter().copied());
            let lits = self.clauses[confl].lits.clone();
            for q in lits {
                if Some(q) == p {
                    continue;
                }
                let v = q.var();
                if seen[v] {
                    continue;
                }
                if self.level[v] == 0 {
                    // globally-false literal, dropped from the learned
                    // clause — but its derivation stays in the origin set
                    self.level0_origins(v, &mut origins);
                    continue;
                }
                seen[v] = true;
                self.bump(v);
                if self.level[v] >= cur {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            loop {
                idx -= 1;
                if seen[self.trail[idx].var()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            seen[pl.var()] = false;
            counter -= 1;
            if counter == 0 {
                learnt.insert(0, pl.negate());
                break;
            }
            p = Some(pl);
            confl = self.reason[pl.var()].expect("non-UIP literal has a reason");
        }
        let mut back = 0;
        if learnt.len() > 1 {
            let mut mi = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var()] > self.level[learnt[mi].var()] {
                    mi = i;
                }
            }
            learnt.swap(1, mi);
            back = self.level[learnt[1].var()];
        }
        (learnt, back, origins.into_iter().collect())
    }

    fn cancel_until(&mut self, lvl: u32) {
        while self.decision_level() > lvl {
            let lim = self.trail_lim.pop().expect("level implies a limit");
            while self.trail.len() > lim {
                let p = self.trail.pop().expect("trail above limit");
                let v = p.var();
                self.phase[v] = !p.is_neg();
                self.assigns[v] = None;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
    }

    /// Store a learned clause, attach watches, and assert its first
    /// literal.
    fn learn(&mut self, lits: Vec<Lit>, origins: Vec<usize>) {
        self.stats.learned += 1;
        let ci = self.clauses.len();
        let asserting = lits[0];
        let attach = lits.len() > 1;
        if attach {
            self.watches[lits[0].idx()].push(ci);
            self.watches[lits[1].idx()].push(ci);
        }
        self.clauses.push(Clause { lits, origins });
        self.enqueue(asserting, Some(ci));
    }

    /// Unsat core of a conflict at decision level 0: resolve the conflict
    /// clause against the reason chain of every falsified literal.
    fn final_core(&self, confl: usize) -> Vec<usize> {
        let mut origins: BTreeSet<usize> = self.clauses[confl].origins.iter().copied().collect();
        for &q in &self.clauses[confl].lits {
            self.level0_origins(q.var(), &mut origins);
        }
        origins.into_iter().collect()
    }

    /// Pick the unassigned variable with the highest activity (ties →
    /// lowest index).
    fn pick_branch(&self) -> Option<Var> {
        let mut best: Option<Var> = None;
        for v in 0..self.num_vars() {
            if self.assigns[v].is_none() && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best
    }

    /// Decide satisfiability. The outcome is memoized; repeated calls are
    /// cheap and identical.
    pub fn solve(&mut self) -> Outcome {
        if let Some(o) = &self.memo {
            return o.clone();
        }
        let o = self.solve_inner();
        self.memo = Some(o.clone());
        o
    }

    fn solve_inner(&mut self) -> Outcome {
        if let Some(core) = &self.root_unsat {
            return Outcome::Unsat(core.clone());
        }
        // assert the original unit clauses at level 0
        for ci in self.units.clone() {
            let l = self.clauses[ci].lits[0];
            match self.lit_value(l) {
                Some(true) => {}
                Some(false) => return Outcome::Unsat(self.final_core(ci)),
                None => self.enqueue(l, Some(ci)),
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                return Outcome::Unsat(self.final_core(confl));
            }
        }
        let mut since_restart = 0u64;
        let mut restart_idx = 0u64;
        let mut limit = RESTART_UNIT * luby(restart_idx);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    return Outcome::Unsat(self.final_core(confl));
                }
                let (learnt, back, origins) = self.analyze(confl);
                self.cancel_until(back);
                self.learn(learnt, origins);
                self.decay();
                since_restart += 1;
            } else if since_restart >= limit {
                self.stats.restarts += 1;
                restart_idx += 1;
                limit = RESTART_UNIT * luby(restart_idx);
                since_restart = 0;
                self.cancel_until(0);
            } else {
                match self.pick_branch() {
                    None => {
                        let model: Vec<bool> = self
                            .assigns
                            .iter()
                            .map(|a| a.expect("complete assignment"))
                            .collect();
                        return Outcome::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = if self.phase[v] {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        };
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }
}

/// True when `model` satisfies every clause (an empty clause is never
/// satisfied).
pub fn check_model(model: &[bool], clauses: &[Vec<Lit>]) -> bool {
    clauses.iter().all(|c| c.iter().any(|l| l.eval(model)))
}

/// Exhaustive model enumeration — the trusted reference the CDCL solver
/// is property-tested against, and the checker `slc verify` uses to
/// re-establish that a certificate's clause set is unsatisfiable. Returns
/// the lexicographically first model (variable 0 is the least significant
/// bit of the enumeration), or `None` when unsatisfiable. Exponential in
/// `num_vars`; callers keep `num_vars ≤ 24`.
pub fn brute_force(num_vars: usize, clauses: &[Vec<Lit>]) -> Option<Vec<bool>> {
    assert!(num_vars <= 24, "brute_force is exponential in num_vars");
    // Per-clause bitmasks: a clause is falsified by a model `bits` iff
    // `bits & care == falsify` (every literal assigned its false value).
    // Tautologies can never match and are dropped.
    let mut masks: Vec<(u64, u64)> = Vec::with_capacity(clauses.len());
    for c in clauses {
        if c.is_empty() {
            return None;
        }
        let (mut care, mut falsify) = (0u64, 0u64);
        let mut tautology = false;
        for &l in c {
            assert!(l.var() < num_vars, "literal out of range");
            let bit = 1u64 << l.var();
            let false_bit = if l.is_neg() { bit } else { 0 };
            if care & bit != 0 && falsify & bit != false_bit {
                tautology = true;
                break;
            }
            care |= bit;
            falsify = (falsify & !bit) | false_bit;
        }
        if !tautology {
            masks.push((care, falsify));
        }
    }
    'next: for bits in 0..(1u64 << num_vars) {
        for &(care, falsify) in &masks {
            if bits & care == falsify {
                continue 'next;
            }
        }
        return Some((0..num_vars).map(|v| bits >> v & 1 == 1).collect());
    }
    None
}

/// Solve only the clauses in `keep` (ids into `clauses`); the returned
/// core is mapped back to ids in the original space.
pub fn solve_subset(clauses: &[Vec<Lit>], keep: &[usize]) -> Outcome {
    let mut s = Solver::new();
    for &id in keep {
        s.add_clause(&clauses[id]);
    }
    match s.solve() {
        Outcome::Sat(m) => Outcome::Sat(m),
        Outcome::Unsat(core) => {
            let mut mapped: Vec<usize> = core.into_iter().map(|i| keep[i]).collect();
            mapped.sort_unstable();
            Outcome::Unsat(mapped)
        }
    }
}

/// Deletion-based unsat-core minimization: drop each clause of `core` in
/// turn and keep the deletion whenever the remainder is still
/// unsatisfiable. The result is a *minimal* core (no single clause can be
/// removed), though not necessarily a minimum one. `core` must be an
/// unsat core of `clauses`.
pub fn minimize_core(clauses: &[Vec<Lit>], core: &[usize]) -> Vec<usize> {
    let mut cur: Vec<usize> = core.to_vec();
    cur.sort_unstable();
    let mut i = 0;
    while i < cur.len() {
        let mut trial = cur.clone();
        trial.remove(i);
        match solve_subset(clauses, &trial) {
            Outcome::Unsat(smaller) => {
                // the sub-solve may shrink the core further for free
                cur = smaller;
            }
            Outcome::Sat(_) => i += 1,
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[Lit::pos(0)]);
        assert_eq!(s.solve(), Outcome::Sat(vec![true]));

        let mut s = Solver::new();
        let a = s.add_clause(&[Lit::pos(0)]);
        let b = s.add_clause(&[Lit::neg(0)]);
        assert_eq!(s.solve(), Outcome::Unsat(vec![a, b]));
    }

    #[test]
    fn tautologies_never_constrain_or_appear_in_cores() {
        let mut s = Solver::new();
        s.add_clause(&[Lit::pos(0), Lit::neg(0)]);
        let a = s.add_clause(&[Lit::pos(1)]);
        let b = s.add_clause(&[Lit::neg(1)]);
        assert_eq!(s.solve(), Outcome::Unsat(vec![a, b]));
    }

    #[test]
    fn luby_prefix() {
        let want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..want.len() as u64).map(luby).collect();
        assert_eq!(got, want);
    }
}
