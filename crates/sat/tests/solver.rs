//! SAT solver correctness suite (ISSUE 6 satellite): the CDCL solver is
//! property-tested against the exhaustive model enumerator on random
//! small CNF, and its internals (unit propagation, conflict analysis,
//! unsat cores) are pinned on hand-built instances.

use proptest::prelude::*;
use slc_sat::{brute_force, check_model, minimize_core, solve_subset, Lit, Outcome, Solver};

/// A random clause over `num_vars` variables with 1–4 literals.
fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Lit>> {
    proptest::collection::vec((0..num_vars, any::<bool>()), 1..5).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(v, neg)| if neg { Lit::neg(v) } else { Lit::pos(v) })
            .collect()
    })
}

fn cnf_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Vec<Lit>>> {
    proptest::collection::vec(clause_strategy(num_vars), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, ..ProptestConfig::default() })]

    /// sat/unsat agreement with the brute-force enumerator on CNF of up
    /// to 20 variables; models returned by the solver must actually
    /// satisfy the formula, and unsat cores must be unsatisfiable subsets.
    #[test]
    fn cdcl_agrees_with_brute_force(clauses in cnf_strategy(20)) {
        let reference = brute_force(20, &clauses);
        let mut s = Solver::new();
        for c in &clauses {
            s.add_clause(c);
        }
        match s.solve() {
            Outcome::Sat(mut model) => {
                prop_assert!(reference.is_some(), "solver SAT but enumerator found no model");
                model.resize(20, false);
                prop_assert!(check_model(&model, &clauses), "solver model does not satisfy CNF");
            }
            Outcome::Unsat(core) => {
                prop_assert!(reference.is_none(), "solver UNSAT but enumerator found a model");
                // the core must itself be an unsatisfiable subset
                let subset: Vec<Vec<Lit>> = core.iter().map(|&i| clauses[i].clone()).collect();
                prop_assert!(brute_force(20, &subset).is_none(), "unsat core is satisfiable");
            }
        }
    }

    /// `solve_subset` and `minimize_core` preserve unsatisfiability and
    /// produce cores in the original id space.
    #[test]
    fn minimized_cores_stay_unsat(clauses in cnf_strategy(8)) {
        let mut s = Solver::new();
        for c in &clauses {
            s.add_clause(c);
        }
        if let Outcome::Unsat(core) = s.solve() {
            let min = minimize_core(&clauses, &core);
            prop_assert!(min.iter().all(|i| core.contains(i)), "minimized core grew");
            let subset: Vec<Vec<Lit>> = min.iter().map(|&i| clauses[i].clone()).collect();
            prop_assert!(brute_force(8, &subset).is_none(), "minimized core is satisfiable");
            // minimality: dropping any single clause makes it satisfiable
            for k in 0..min.len() {
                let mut trial = min.clone();
                trial.remove(k);
                prop_assert!(
                    solve_subset(&clauses, &trial).is_sat(),
                    "core is not minimal: clause {} is redundant",
                    min[k]
                );
            }
        }
    }
}

/// Unit propagation alone solves a Horn-style chain: x0, x0→x1, x1→x2 …
/// with zero decisions.
#[test]
fn unit_propagation_solves_implication_chain() {
    let mut s = Solver::new();
    s.add_clause(&[Lit::pos(0)]);
    for v in 0..9 {
        s.add_clause(&[Lit::neg(v), Lit::pos(v + 1)]);
    }
    match s.solve() {
        Outcome::Sat(model) => assert!(model.iter().all(|&b| b)),
        Outcome::Unsat(_) => panic!("chain is satisfiable"),
    }
    assert_eq!(
        s.stats().decisions,
        0,
        "pure propagation needs no decisions"
    );
    assert!(s.stats().propagations >= 10);
}

/// Conflict analysis learns something on the classic 2-level conflict
/// instance and still reports SAT.
#[test]
fn conflict_analysis_learns_and_recovers() {
    // (x0 ∨ x1) (x0 ∨ ¬x1) force x0 after any x0=false branch;
    // (¬x0 ∨ x2) (¬x0 ∨ ¬x2 ∨ x3) then propagate the rest.
    let mut s = Solver::new();
    s.add_clause(&[Lit::pos(0), Lit::pos(1)]);
    s.add_clause(&[Lit::pos(0), Lit::neg(1)]);
    s.add_clause(&[Lit::neg(0), Lit::pos(2)]);
    s.add_clause(&[Lit::neg(0), Lit::neg(2), Lit::pos(3)]);
    match s.solve() {
        Outcome::Sat(model) => {
            assert!(model[0] && model[2] && model[3]);
        }
        Outcome::Unsat(_) => panic!("instance is satisfiable"),
    }
    // the default phase assigns false first, so x0=false must have
    // conflicted and been repaired by a learned unit
    assert!(s.stats().conflicts >= 1);
    assert!(s.stats().learned >= 1);
}

/// Unsat core on a hand-built instance: pigeonhole-free core among
/// irrelevant clauses. The relevant contradiction is x5 ∧ (¬x5 ∨ x6) ∧ ¬x6;
/// decoy clauses over other variables must not appear in the core.
#[test]
fn unsat_core_excludes_irrelevant_clauses() {
    let clauses: Vec<Vec<Lit>> = vec![
        vec![Lit::pos(0), Lit::pos(1)],              // 0: decoy
        vec![Lit::pos(5)],                           // 1: core
        vec![Lit::neg(2), Lit::pos(3)],              // 2: decoy
        vec![Lit::neg(5), Lit::pos(6)],              // 3: core
        vec![Lit::neg(6)],                           // 4: core
        vec![Lit::pos(4), Lit::neg(0), Lit::pos(2)], // 5: decoy
    ];
    let mut s = Solver::new();
    for c in &clauses {
        s.add_clause(c);
    }
    let core = match s.solve() {
        Outcome::Unsat(core) => core,
        Outcome::Sat(_) => panic!("instance is unsatisfiable"),
    };
    let min = minimize_core(&clauses, &core);
    assert_eq!(min, vec![1, 3, 4], "exact minimal core expected");
}

/// The core of a conflict discovered below decision level 0 (via learned
/// units) is still sound and minimal after minimization: XOR-style chain
/// with both parities blocked.
#[test]
fn unsat_core_minimality_on_xor_block() {
    // x0⊕x1 = 1 (clauses 0,1), x1⊕x2 = 1 (2,3), x0⊕x2 = 1 (4,5): odd
    // cycle — unsat; plus two decoys (6,7).
    let clauses: Vec<Vec<Lit>> = vec![
        vec![Lit::pos(0), Lit::pos(1)],
        vec![Lit::neg(0), Lit::neg(1)],
        vec![Lit::pos(1), Lit::pos(2)],
        vec![Lit::neg(1), Lit::neg(2)],
        vec![Lit::pos(0), Lit::pos(2)],
        vec![Lit::neg(0), Lit::neg(2)],
        vec![Lit::pos(3), Lit::pos(4)],
        vec![Lit::neg(3), Lit::pos(4)],
    ];
    let mut s = Solver::new();
    for c in &clauses {
        s.add_clause(c);
    }
    let core = match s.solve() {
        Outcome::Unsat(core) => core,
        Outcome::Sat(_) => panic!("odd XOR cycle is unsatisfiable"),
    };
    assert!(core.iter().all(|&i| i < 6), "decoys leaked into the core");
    let min = minimize_core(&clauses, &core);
    assert_eq!(min, vec![0, 1, 2, 3, 4, 5]);
    for k in 0..min.len() {
        let mut trial = min.clone();
        trial.remove(k);
        assert!(solve_subset(&clauses, &trial).is_sat());
    }
}

/// Determinism: identical instances yield identical models, cores, and
/// statistics.
#[test]
fn solver_is_deterministic() {
    let run = || {
        let mut s = Solver::new();
        let clauses = [
            vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
            vec![Lit::neg(0), Lit::pos(3)],
            vec![Lit::neg(1), Lit::neg(3)],
            vec![Lit::neg(2), Lit::pos(1)],
        ];
        for c in &clauses {
            s.add_clause(c);
        }
        (s.solve(), s.stats())
    };
    assert_eq!(run(), run());
}
