//! The zero-cost-when-disabled contract, proven in an isolated process:
//! a disabled tracer performs **no timer syscalls** (global clock-read
//! counter stays flat) and **no heap allocation** (counting global
//! allocator observes zero new allocations across a hot span loop).
//!
//! This file must stay a single `#[test]` binary: both guards are global
//! counters and would race with unrelated concurrent tests.
//!
//! The same allocator guard also proves the flight recorder's
//! steady-state contract: once the ring is full, recording overwrites
//! slots in place and performs zero heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use slc_trace::{clock_reads, FlightRecorder, RecKind, Tracer};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_tracer_is_zero_cost() {
    let tracer = Tracer::disabled();
    // Warm anything lazy in the harness path before sampling the counters.
    {
        let mut s = tracer.span("stage", "warmup");
        s.arg("n", 0u64);
    }
    let clocks_before = clock_reads();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..100_000u64 {
        let mut s = tracer.span("stage", "parse");
        s.arg("index", i);
        s.arg("kind", "orig");
        drop(s);
        let _d = tracer.span_dyn("cell", || unreachable!("name built on disabled path"));
        tracer.set_thread_track(3, "worker-3");
    }
    let clocks = clock_reads() - clocks_before;
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(clocks, 0, "disabled tracer read the clock {clocks} times");
    assert_eq!(allocs, 0, "disabled tracer allocated {allocs} times");
    assert_eq!(tracer.event_count(), 0);

    // Sanity check the guards themselves: an enabled tracer must trip both.
    let enabled = Tracer::enabled();
    {
        let mut s = enabled.span("stage", "parse");
        s.arg("index", 1u64);
    }
    assert!(clock_reads() > clocks_before, "clock guard is not wired");
    assert!(
        ALLOCS.load(Ordering::Relaxed) > allocs_before,
        "alloc guard is not wired"
    );
    assert_eq!(enabled.event_count(), 1);

    // Flight recorder steady state: the ring is pre-allocated at
    // construction; once full, recording must never touch the allocator.
    let rec = FlightRecorder::new(256);
    for i in 0..256u64 {
        rec.record(RecKind::Mark, "warmup", i, 0);
    }
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..100_000u64 {
        rec.record(RecKind::Counter, "steady", i, i);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(allocs, 0, "full flight ring allocated {allocs} times");
    assert_eq!(rec.recorded(), 100_256);
    assert_eq!(rec.len(), 256);
}
