//! Deterministic log2-bucketed histograms and the histogram CI gate.
//!
//! Totals flatten distributions: `exact.sat_conflicts = 132` cannot
//! distinguish "all 42 solves cheap" from "41 free, one pathological
//! loop". Histograms keep the shape, under the same determinism split the
//! counters obey ([`crate::counters`]):
//!
//! * **work histograms** record counts of work units (MIs placed per
//!   loop, SAT conflicts per solve, dep pairs per loop) — pure functions
//!   of the experiment matrix, identical across machines and thread
//!   counts, recorded only inside cache-miss closures, and gateable in CI
//!   against a checked-in baseline ([`check_histograms`]);
//! * **wall-clock histograms** (stage latencies, serve latencies) use the
//!   same type but are quarantined in timing sidecars and bench reports,
//!   never gated on exact values.
//!
//! The bucketing rule is fixed so merged histograms from different
//! processes are well defined: bucket 0 holds exactly the value 0, and
//! bucket `k` (1..=64) holds the half-open range `[2^(k-1), 2^k)` — i.e.
//! a value lands in the bucket indexed by its bit length. Percentiles
//! report the *upper bound* of the bucket containing the requested rank
//! (deterministic, never interpolated), except the exact tracked maximum
//! for the top rank.

use std::collections::BTreeMap;

use crate::json::Json;

/// Schema tag written into the histogram baseline document.
pub const HISTOGRAMS_SCHEMA: &str = "slc-histograms-v1";

/// Number of buckets: one for zero plus one per bit length of a `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else the value's bit length
/// (so bucket `k` covers `[2^(k-1), 2^k)`).
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (`2^k − 1`; bucket 0 → 0).
pub fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// A log2-bucketed distribution of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts, index = [`bucket_of`] of the values it holds.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Deterministic percentile: the upper bound of the bucket containing
    /// rank `ceil(q · count)` (1-based), except the exact tracked maximum
    /// once the rank reaches the final observation. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Serialize as a JSON object: `count`/`sum`/`min`/`max` plus a sparse
    /// `buckets` object mapping bucket index → count (empty buckets
    /// omitted so documents stay readable).
    pub fn to_json(&self) -> Json {
        let mut buckets = Json::obj();
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                buckets = buckets.field(&idx.to_string(), n);
            }
        }
        Json::obj()
            .field("count", self.count)
            .field("sum", self.sum)
            .field("min", self.min())
            .field("max", self.max)
            .field("buckets", buckets)
    }

    /// Parse a histogram serialized by [`Histogram::to_json`].
    pub fn from_json(doc: &Json) -> Result<Histogram, String> {
        let int = |name: &str| -> Result<u64, String> {
            doc.get(name)
                .and_then(Json::as_i64)
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("histogram field {name:?} is not a non-negative integer"))
        };
        let mut h = Histogram::new();
        h.count = int("count")?;
        h.sum = int("sum")?;
        h.max = int("max")?;
        h.min = if h.count == 0 { u64::MAX } else { int("min")? };
        for (k, v) in doc
            .get("buckets")
            .and_then(Json::as_obj)
            .ok_or("histogram missing buckets object")?
        {
            let idx: usize = k
                .parse()
                .ok()
                .filter(|&i| i < BUCKETS)
                .ok_or_else(|| format!("bad bucket index {k:?}"))?;
            let n = v
                .as_i64()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("bucket {k:?} count is not a non-negative integer"))?;
            h.buckets[idx] = n;
        }
        if h.buckets.iter().sum::<u64>() != h.count {
            return Err("histogram bucket counts do not sum to count".to_string());
        }
        Ok(h)
    }
}

/// An ordered map of named histograms, mirroring
/// [`crate::CounterRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramRegistry {
    map: BTreeMap<String, Histogram>,
}

impl HistogramRegistry {
    /// An empty registry.
    pub fn new() -> HistogramRegistry {
        HistogramRegistry::default()
    }

    /// Record one observation into histogram `name` (created if absent).
    pub fn record(&mut self, name: &str, v: u64) {
        self.map.entry(name.to_string()).or_default().record(v);
    }

    /// The histogram named `name`, if any observations exist.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.map.get(name)
    }

    /// Number of histograms.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Name-ordered iteration.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold another registry into this one (merge per name).
    pub fn merge(&mut self, other: &HistogramRegistry) {
        for (k, v) in &other.map {
            self.map.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Human rendering: one row per histogram with count, sum, min,
    /// p50/p90/p99, and max.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let width = self.map.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, h) in &self.map {
            let _ = writeln!(
                out,
                "{k:<width$}  count={} sum={} min={} p50={} p90={} p99={} max={}",
                h.count(),
                h.sum(),
                h.min(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max()
            );
        }
        out
    }

    /// Serialize the registry body (name → histogram object).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (k, h) in &self.map {
            obj = obj.field(k, h.to_json());
        }
        obj
    }

    /// Serialize as the histogram-baseline document (`schema` +
    /// `histograms`), pretty-printed for checking in.
    pub fn to_baseline_json(&self) -> String {
        Json::obj()
            .field("schema", HISTOGRAMS_SCHEMA)
            .field("histograms", self.to_json())
            .to_pretty()
    }
}

/// A parsed histogram-baseline document (`BENCH_histograms.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramBaseline {
    /// expected distributions by name
    pub histograms: BTreeMap<String, Histogram>,
}

impl HistogramBaseline {
    /// Parse a baseline produced by
    /// [`HistogramRegistry::to_baseline_json`].
    pub fn parse(text: &str) -> Result<HistogramBaseline, String> {
        let doc = Json::parse(text)?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != HISTOGRAMS_SCHEMA {
            return Err(format!(
                "expected schema {HISTOGRAMS_SCHEMA:?}, found {schema:?}"
            ));
        }
        let mut histograms = BTreeMap::new();
        for (k, v) in doc
            .get("histograms")
            .and_then(Json::as_obj)
            .ok_or("missing histograms object")?
        {
            histograms.insert(k.clone(), Histogram::from_json(v)?);
        }
        Ok(HistogramBaseline { histograms })
    }
}

/// Compare a run's work histograms against a baseline: every baseline
/// histogram must be present with exactly matching count, sum, and bucket
/// vector (work histograms are deterministic, so exactness is the point).
/// Extra histograms the baseline does not know about are not failures —
/// same additive-drift policy as [`crate::check_counters`].
pub fn check_histograms(actual: &HistogramRegistry, baseline: &HistogramBaseline) -> Vec<String> {
    let mut failures = Vec::new();
    for (name, expected) in &baseline.histograms {
        match actual.get(name) {
            None => failures.push(format!("{name}: histogram missing from run")),
            Some(got) if got != expected => failures.push(format!(
                "{name}: expected count={} sum={} max={}, got count={} sum={} max={}",
                expected.count(),
                expected.sum(),
                expected.max(),
                got.count(),
                got.sum(),
                got.max()
            )),
            Some(_) => {}
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_rule_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // every value's bucket upper bound contains it
        for v in [0u64, 1, 5, 100, 1 << 40] {
            assert!(v <= bucket_upper(bucket_of(v)));
        }
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds_with_exact_max() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 5, 9, 17, 33, 70, 130, 300] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 300);
        // rank 5 = value 9 → bucket 4 ([8,16)) → upper 15
        assert_eq!(h.percentile(0.50), 15);
        // top rank returns the exact maximum, not the bucket bound
        assert_eq!(h.percentile(1.0), 300);
        assert_eq!(h.percentile(0.999), 300);
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let vals = [0u64, 1, 7, 7, 64, 9000];
        let mut whole = Histogram::new();
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            };
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn json_round_trip_and_baseline_gate() {
        let mut reg = HistogramRegistry::new();
        for v in [3u64, 3, 12, 900] {
            reg.record("slms.mis_per_loop", v);
        }
        reg.record("deps.pairs_per_loop", 0);
        let doc = reg.to_baseline_json();
        let base = HistogramBaseline::parse(&doc).unwrap();
        assert!(check_histograms(&reg, &base).is_empty());

        // extra histogram in the run is tolerated (additive drift)
        let mut drifted = reg.clone();
        drifted.record("new.family", 1);
        assert!(check_histograms(&drifted, &base).is_empty());

        // changed distribution and missing histogram both fail
        let mut changed = reg.clone();
        changed.record("slms.mis_per_loop", 5);
        let failures = check_histograms(&changed, &base);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("slms.mis_per_loop"));
        let empty = HistogramRegistry::new();
        assert_eq!(check_histograms(&empty, &base).len(), 2);
    }

    #[test]
    fn bad_baselines_rejected() {
        assert!(HistogramBaseline::parse("{}").is_err());
        let lying = r#"{"schema":"slc-histograms-v1","histograms":{"h":{"count":2,"sum":1,"min":0,"max":1,"buckets":{"1":1}}}}"#;
        assert!(HistogramBaseline::parse(lying)
            .unwrap_err()
            .contains("sum to count"));
        let bad_idx = r#"{"schema":"slc-histograms-v1","histograms":{"h":{"count":1,"sum":1,"min":1,"max":1,"buckets":{"99":1}}}}"#;
        assert!(HistogramBaseline::parse(bad_idx).is_err());
    }

    #[test]
    fn registry_render_and_merge() {
        let mut a = HistogramRegistry::new();
        a.record("x.y", 4);
        let mut b = HistogramRegistry::new();
        b.record("x.y", 9);
        b.record("z.w", 1);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("x.y").unwrap().count(), 2);
        let text = a.render_text();
        assert!(text.contains("x.y"));
        assert!(text.contains("count=2"));
    }
}
