//! Hierarchical span collection with a Chrome trace-event exporter.
//!
//! A [`Tracer`] is a cheap clone-able handle that is either *disabled* (the
//! default — no buffer, no clock reads, no allocation; every operation is a
//! branch on a `None`) or *enabled* (backed by a shared, thread-safe
//! [`TraceBuf`]). Instrumented code asks the tracer for a [`Span`]; the span
//! records its start time on creation and pushes one complete event into the
//! buffer when dropped. Worker threads register a *track* (a Chrome `tid`)
//! once via [`Tracer::set_thread_track`]; spans pick the current thread's
//! track up from a thread-local, so a multi-threaded batch run renders as
//! one timeline row per worker in Perfetto / `chrome://tracing`.
//!
//! The disabled path is deliberately verifiable: every real timestamp read
//! bumps [`clock_reads`], so tests can assert that a disabled tracer
//! performs zero timer syscalls (see `crates/trace/tests/zero_cost.rs`,
//! which additionally proves zero allocation with a counting global
//! allocator).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Wire schema identifier for per-process span dumps (what
/// [`Tracer::export_process_dump`] writes and
/// [`Tracer::import_process_dump`] reads).
pub const SPAN_DUMP_SCHEMA: &str = "slc-span-dump-v1";

/// A distributed trace context: the identity a request or batch run carries
/// across process boundaries so every participating process records spans
/// under one trace.
///
/// `trace_id` names the trace (a whole `slc batch --shards N` run, or one
/// daemon request); `parent_span` is the caller-side span the remote work
/// hangs under (0 = root). Both travel on the wire as 16-digit hex strings
/// — in `slc-serve-proto-v1` requests and in the `slc-shard-proto-v1`
/// `init` message — and the Chrome exporter stamps the merged document's
/// `otherData.trace_id` with it, so a stitched multi-process trace provably
/// belongs to one trace id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// trace identity shared by every process participating in one run
    pub trace_id: u64,
    /// caller-side parent span id (0 = this context is the root)
    pub parent_span: u64,
}

impl TraceCtx {
    /// A fresh root context. The id mixes the process id with the wall
    /// clock so concurrent runs on one machine get distinct traces; it is
    /// an identity, not a measurement, so it never lands in canonical
    /// reports or counters.
    pub fn fresh() -> TraceCtx {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = std::process::id() as u64;
        // splitmix64 finalizer: spreads pid/time bits over the whole word
        let mut z = nanos ^ (pid << 32) ^ pid;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        TraceCtx {
            trace_id: (z ^ (z >> 31)).max(1),
            parent_span: 0,
        }
    }

    /// The context a child process should run under, hanging off `span`.
    pub fn child(&self, span: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent_span: span,
        }
    }

    /// Render `trace_id` as the canonical 16-digit hex wire form.
    pub fn trace_id_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Render `parent_span` as the canonical 16-digit hex wire form.
    pub fn parent_span_hex(&self) -> String {
        format!("{:016x}", self.parent_span)
    }

    /// Reconstruct a context from the two hex wire fields.
    pub fn from_hex(trace_id: &str, parent_span: &str) -> Result<TraceCtx, String> {
        let t = u64::from_str_radix(trace_id, 16)
            .map_err(|_| format!("bad trace_id `{trace_id}` (want hex u64)"))?;
        let p = u64::from_str_radix(parent_span, 16)
            .map_err(|_| format!("bad parent_span `{parent_span}` (want hex u64)"))?;
        Ok(TraceCtx {
            trace_id: t,
            parent_span: p,
        })
    }
}

/// Global count of real clock reads performed by enabled tracers. Test
/// guard for the zero-cost-when-disabled contract; never reset.
static CLOCK_READS: AtomicU64 = AtomicU64::new(0);

/// Total [`Instant::now`] calls made by the span layer so far.
pub fn clock_reads() -> u64 {
    CLOCK_READS.load(Ordering::Relaxed)
}

thread_local! {
    /// Chrome track id for spans opened on this thread (0 = main).
    static CURRENT_TID: Cell<u32> = const { Cell::new(0) };
    /// Chrome process id for spans opened on this thread (1 = the slc
    /// process itself; the sharded batch dispatcher binds one synthetic
    /// process per worker shard so every shard renders as its own
    /// Perfetto process track).
    static CURRENT_PID: Cell<u32> = const { Cell::new(1) };
}

/// A span argument value (rendered into the Chrome event's `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// integer argument
    I(i64),
    /// float argument
    F(f64),
    /// string argument
    S(String),
    /// boolean argument
    B(bool),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::I(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::from(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::I(i64::from(v))
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::B(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::S(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::S(v)
    }
}

impl From<ArgValue> for Json {
    fn from(v: ArgValue) -> Json {
        match v {
            ArgValue::I(i) => Json::Int(i),
            ArgValue::F(f) => Json::Float(f),
            ArgValue::S(s) => Json::Str(s),
            ArgValue::B(b) => Json::Bool(b),
        }
    }
}

/// One completed span, relative to the buffer's origin instant.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// span name (Chrome `name`)
    pub name: String,
    /// span category (Chrome `cat`): `"batch"`, `"stage"`, `"pass"`,
    /// `"slms"`, `"sim"`, `"verify"`, `"interp"`, `"shard"`
    pub cat: &'static str,
    /// process (Chrome `pid`): 1 = the slc process; 2.. = synthetic
    /// per-shard processes registered via [`Tracer::set_process_track`]
    pub pid: u32,
    /// track (Chrome `tid`): 0 = orchestrating thread, 1.. = workers
    pub tid: u32,
    /// start offset from the tracer's origin, nanoseconds
    pub ts_ns: u64,
    /// duration, nanoseconds
    pub dur_ns: u64,
    /// span arguments
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Shared collection buffer behind an enabled [`Tracer`].
#[derive(Debug)]
pub struct TraceBuf {
    t0: Instant,
    /// wall-clock anchor of `t0` (epoch nanoseconds), so per-process dumps
    /// from different machines/processes can be shifted onto one timeline
    t0_epoch_ns: u64,
    ctx: Mutex<Option<TraceCtx>>,
    events: Mutex<Vec<TraceEvent>>,
    tracks: Mutex<BTreeMap<u32, String>>,
    processes: Mutex<BTreeMap<u32, String>>,
    /// thread names for events imported from other processes, keyed by
    /// (pid, tid) — the local `tracks` map is implicitly pid 1
    remote_tracks: Mutex<BTreeMap<(u32, u32), String>>,
}

impl TraceBuf {
    fn now_ns(&self) -> u64 {
        CLOCK_READS.fetch_add(1, Ordering::Relaxed);
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Span collector handle: disabled (no-op, zero-cost) or enabled.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<Arc<TraceBuf>>,
}

impl Tracer {
    /// The no-op collector: spans neither read the clock nor allocate.
    pub fn disabled() -> Tracer {
        Tracer { buf: None }
    }

    /// A fresh collector with its origin at "now".
    pub fn enabled() -> Tracer {
        CLOCK_READS.fetch_add(2, Ordering::Relaxed);
        Tracer {
            buf: Some(Arc::new(TraceBuf {
                t0: Instant::now(),
                t0_epoch_ns: std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0),
                ctx: Mutex::new(None),
                events: Mutex::new(Vec::new()),
                tracks: Mutex::new(BTreeMap::new()),
                processes: Mutex::new(BTreeMap::new()),
                remote_tracks: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Bind this tracer to a distributed trace context. The first binding
    /// wins; later calls against an already-bound tracer are ignored, so
    /// every request in a traced daemon shares the daemon's root trace.
    pub fn set_ctx(&self, ctx: TraceCtx) {
        if let Some(buf) = &self.buf {
            buf.ctx.lock().unwrap().get_or_insert(ctx);
        }
    }

    /// The bound trace context, if any.
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.buf.as_ref().and_then(|b| *b.ctx.lock().unwrap())
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Bind the calling thread to Chrome track `tid`, naming it on first
    /// registration. Call once per worker before opening spans.
    pub fn set_thread_track(&self, tid: u32, name: &str) {
        if let Some(buf) = &self.buf {
            CURRENT_TID.set(tid);
            let mut tracks = buf.tracks.lock().unwrap();
            tracks.entry(tid).or_insert_with(|| name.to_string());
        }
    }

    /// Bind the calling thread to Chrome process `pid`, naming it on first
    /// registration. Process 1 is the slc process itself ("slc") and needs
    /// no registration; the sharded batch dispatcher registers `2 + shard`
    /// per worker shard so each shard renders as its own Perfetto process
    /// track. Call `set_process_track(1, "slc")` to return spans to the
    /// default process.
    pub fn set_process_track(&self, pid: u32, name: &str) {
        if let Some(buf) = &self.buf {
            CURRENT_PID.set(pid);
            if pid != 1 {
                let mut procs = buf.processes.lock().unwrap();
                procs.entry(pid).or_insert_with(|| name.to_string());
            }
        }
    }

    /// Open a span with a static name. Closed (recorded) on drop.
    pub fn span(&self, cat: &'static str, name: &str) -> Span {
        match &self.buf {
            None => Span { rec: None },
            Some(buf) => Span {
                rec: Some(SpanRec {
                    start_ns: buf.now_ns(),
                    buf: Arc::clone(buf),
                    name: name.to_string(),
                    cat,
                    pid: CURRENT_PID.get(),
                    tid: CURRENT_TID.get(),
                    args: Vec::new(),
                }),
            },
        }
    }

    /// Open a span whose name is built lazily — `make` runs only when the
    /// tracer is enabled, so dynamic names cost nothing when disabled.
    pub fn span_dyn(&self, cat: &'static str, make: impl FnOnce() -> String) -> Span {
        match &self.buf {
            None => Span { rec: None },
            Some(_) => self.span(cat, &make()),
        }
    }

    /// Number of completed spans recorded so far.
    pub fn event_count(&self) -> usize {
        self.buf
            .as_ref()
            .map_or(0, |b| b.events.lock().unwrap().len())
    }

    /// Snapshot of completed spans, sorted by (process, track, start,
    /// longest-first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(buf) = &self.buf else {
            return Vec::new();
        };
        let mut evs = buf.events.lock().unwrap().clone();
        evs.sort_by(|a, b| {
            (a.pid, a.tid, a.ts_ns, std::cmp::Reverse(a.dur_ns), &a.name).cmp(&(
                b.pid,
                b.tid,
                b.ts_ns,
                std::cmp::Reverse(b.dur_ns),
                &b.name,
            ))
        });
        evs
    }

    /// Registered (track id, name) pairs, id-ordered.
    pub fn tracks(&self) -> Vec<(u32, String)> {
        self.buf.as_ref().map_or(Vec::new(), |b| {
            b.tracks
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect()
        })
    }

    /// Registered synthetic (process id, name) pairs, id-ordered. Does not
    /// include the implicit process 1 ("slc").
    pub fn processes(&self) -> Vec<(u32, String)> {
        self.buf.as_ref().map_or(Vec::new(), |b| {
            b.processes
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect()
        })
    }

    /// Export this process's spans as a self-contained dump another
    /// process can merge with [`Tracer::import_process_dump`]: schema tag,
    /// trace id (when bound), the wall-clock anchor of the time origin,
    /// the registered thread tracks and every completed span. `None` if
    /// disabled.
    pub fn export_process_dump(&self, process_name: &str) -> Option<String> {
        let buf = self.buf.as_ref()?;
        let mut doc = Json::obj()
            .field("schema", SPAN_DUMP_SCHEMA)
            .field("process", process_name)
            .field("t0_epoch_ns", Json::Str(format!("{}", buf.t0_epoch_ns)));
        if let Some(ctx) = self.ctx() {
            doc = doc
                .field("trace_id", ctx.trace_id_hex())
                .field("parent_span", ctx.parent_span_hex());
        }
        let tracks: Vec<Json> = self
            .tracks()
            .into_iter()
            .map(|(tid, name)| Json::obj().field("tid", tid).field("name", name))
            .collect();
        let events: Vec<Json> = self
            .events()
            .into_iter()
            .map(|ev| {
                let mut args = Json::obj();
                for (k, v) in ev.args {
                    args = args.field(k, v);
                }
                Json::obj()
                    .field("name", ev.name)
                    .field("cat", ev.cat)
                    .field("tid", ev.tid)
                    .field("ts_ns", Json::Str(format!("{}", ev.ts_ns)))
                    .field("dur_ns", Json::Str(format!("{}", ev.dur_ns)))
                    .field("args", args)
            })
            .collect();
        Some(
            doc.field("tracks", Json::Arr(tracks))
                .field("events", Json::Arr(events))
                .to_string(),
        )
    }

    /// Merge another process's span dump into this buffer under Chrome
    /// process `pid`. Timestamps are shifted onto this tracer's timeline
    /// via the wall-clock anchors; the dump's thread tracks are remapped
    /// to `tid + 1` so the importing side's own `tid 0` row for that
    /// process (e.g. the dispatcher's per-shard chunk spans) stays
    /// distinct. Errors if the dump belongs to a different trace id than
    /// this tracer is bound to. Returns the number of spans imported.
    pub fn import_process_dump(&self, text: &str, pid: u32, name: &str) -> Result<usize, String> {
        let Some(buf) = &self.buf else {
            return Ok(0);
        };
        let doc = Json::parse(text).map_err(|e| format!("span dump is not JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(SPAN_DUMP_SCHEMA) => {}
            other => return Err(format!("unknown span dump schema {other:?}")),
        }
        if let (Some(mine), Some(theirs)) = (self.ctx(), doc.get("trace_id").and_then(Json::as_str))
        {
            if mine.trace_id_hex() != theirs {
                return Err(format!(
                    "span dump belongs to trace {theirs}, this tracer is bound to {}",
                    mine.trace_id_hex()
                ));
            }
        }
        let parse_u = |j: Option<&Json>| -> Option<u64> {
            match j {
                Some(Json::Str(s)) => s.parse().ok(),
                Some(other) => other.as_i64().map(|v| v as u64),
                None => None,
            }
        };
        let their_epoch = parse_u(doc.get("t0_epoch_ns")).unwrap_or(buf.t0_epoch_ns);
        // shift the remote timeline onto ours; clamp at 0 if the remote
        // anchor predates ours (clock skew)
        let shift = their_epoch as i128 - buf.t0_epoch_ns as i128;
        let proc_name = doc
            .get("process")
            .and_then(Json::as_str)
            .unwrap_or(name)
            .to_string();
        {
            let mut procs = buf.processes.lock().unwrap();
            procs.entry(pid).or_insert(proc_name);
        }
        {
            let mut remote = buf.remote_tracks.lock().unwrap();
            if let Some(tracks) = doc.get("tracks").and_then(Json::as_arr) {
                for t in tracks {
                    if let (Some(tid), Some(tname)) = (
                        t.get("tid").and_then(Json::as_i64),
                        t.get("name").and_then(Json::as_str),
                    ) {
                        remote
                            .entry((pid, tid as u32 + 1))
                            .or_insert_with(|| tname.to_string());
                    }
                }
            }
        }
        let events = doc
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("span dump carries no events array")?;
        let mut imported = Vec::with_capacity(events.len());
        for (i, ev) in events.iter().enumerate() {
            let name = ev
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("dump event {i}: missing name"))?;
            let tid = ev
                .get("tid")
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("dump event {i}: missing tid"))?;
            let ts_ns =
                parse_u(ev.get("ts_ns")).ok_or_else(|| format!("dump event {i}: missing ts_ns"))?;
            let dur_ns = parse_u(ev.get("dur_ns"))
                .ok_or_else(|| format!("dump event {i}: missing dur_ns"))?;
            let cat = match ev.get("cat").and_then(Json::as_str) {
                Some("batch") => "batch",
                Some("stage") => "stage",
                Some("pass") => "pass",
                Some("slms") => "slms",
                Some("sim") => "sim",
                Some("verify") => "verify",
                Some("interp") => "interp",
                Some("shard") => "shard",
                Some("cell") => "cell",
                Some("serve") => "serve",
                _ => "remote",
            };
            let mut args: Vec<(&'static str, ArgValue)> = Vec::new();
            if let Some(Json::Obj(members)) = ev.get("args") {
                // imported arg keys are folded into one value to keep the
                // in-memory event's &'static keys; full fidelity lives in
                // the source process's own dump
                if !members.is_empty() {
                    let rendered = ev.get("args").unwrap().to_string();
                    args.push(("imported_args", ArgValue::S(rendered)));
                }
            }
            imported.push(TraceEvent {
                name: name.to_string(),
                cat,
                pid,
                tid: tid as u32 + 1,
                ts_ns: (ts_ns as i128 + shift).max(0) as u64,
                dur_ns,
                args,
            });
        }
        let n = imported.len();
        buf.events.lock().unwrap().extend(imported);
        Ok(n)
    }

    /// Export the Chrome trace-event document (the JSON Object Format:
    /// `{"traceEvents": [...]}`), loadable in Perfetto. `None` if disabled.
    ///
    /// Emitted events: one `ph:"M"` `process_name` record per process (the
    /// implicit pid 1 "slc" plus every registered synthetic process), one
    /// `ph:"M"` `thread_name` record per registered track (and a tid-0
    /// `thread_name` per synthetic process so Perfetto labels its single
    /// row), then every span as a `ph:"X"` complete event with microsecond
    /// `ts`/`dur`.
    pub fn to_chrome_json(&self) -> Option<String> {
        self.buf.as_ref()?;
        let mut events = Vec::new();
        events.push(
            Json::obj()
                .field("ph", "M")
                .field("name", "process_name")
                .field("pid", 1i64)
                .field("tid", 0i64)
                .field("args", Json::obj().field("name", "slc")),
        );
        for (pid, name) in self.processes() {
            events.push(
                Json::obj()
                    .field("ph", "M")
                    .field("name", "process_name")
                    .field("pid", pid)
                    .field("tid", 0i64)
                    .field("args", Json::obj().field("name", name.as_str())),
            );
            events.push(
                Json::obj()
                    .field("ph", "M")
                    .field("name", "thread_name")
                    .field("pid", pid)
                    .field("tid", 0i64)
                    .field("args", Json::obj().field("name", name)),
            );
        }
        for (tid, name) in self.tracks() {
            events.push(
                Json::obj()
                    .field("ph", "M")
                    .field("name", "thread_name")
                    .field("pid", 1i64)
                    .field("tid", tid)
                    .field("args", Json::obj().field("name", name)),
            );
        }
        if let Some(buf) = &self.buf {
            let remote = buf.remote_tracks.lock().unwrap();
            for (&(pid, tid), name) in remote.iter() {
                events.push(
                    Json::obj()
                        .field("ph", "M")
                        .field("name", "thread_name")
                        .field("pid", pid)
                        .field("tid", tid)
                        .field("args", Json::obj().field("name", name.as_str())),
                );
            }
        }
        for ev in self.events() {
            let mut args = Json::obj();
            for (k, v) in ev.args {
                args = args.field(k, v);
            }
            events.push(
                Json::obj()
                    .field("ph", "X")
                    .field("name", ev.name)
                    .field("cat", ev.cat)
                    .field("pid", ev.pid)
                    .field("tid", ev.tid)
                    .field("ts", ev.ts_ns as f64 / 1000.0)
                    .field("dur", ev.dur_ns as f64 / 1000.0)
                    .field("args", args),
            );
        }
        let mut other = Json::obj().field("generator", "slc-trace");
        if let Some(ctx) = self.ctx() {
            other = other.field("trace_id", ctx.trace_id_hex());
        }
        let doc = Json::obj()
            .field("displayTimeUnit", "ms")
            .field("otherData", other)
            .field("traceEvents", Json::Arr(events));
        Some(doc.to_pretty())
    }

    /// Export the structured event log: one compact JSON object per line
    /// (`ts_us`, `dur_us`, `pid`, `tid`, `cat`, `name`, `args`). `None` if
    /// disabled.
    pub fn to_jsonl(&self) -> Option<String> {
        self.buf.as_ref()?;
        let mut out = String::new();
        for ev in self.events() {
            let mut args = Json::obj();
            for (k, v) in ev.args {
                args = args.field(k, v);
            }
            let line = Json::obj()
                .field("ts_us", ev.ts_ns as f64 / 1000.0)
                .field("dur_us", ev.dur_ns as f64 / 1000.0)
                .field("pid", ev.pid)
                .field("tid", ev.tid)
                .field("cat", ev.cat)
                .field("name", ev.name)
                .field("args", args);
            out.push_str(&line.to_string());
            out.push('\n');
        }
        Some(out)
    }
}

struct SpanRec {
    buf: Arc<TraceBuf>,
    name: String,
    cat: &'static str,
    pid: u32,
    tid: u32,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl std::fmt::Debug for SpanRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRec")
            .field("name", &self.name)
            .field("cat", &self.cat)
            .finish_non_exhaustive()
    }
}

/// An open span; records one complete event when dropped. Obtained from
/// [`Tracer::span`] / [`Tracer::span_dyn`].
#[derive(Debug)]
#[must_use = "a span records its duration when dropped; binding it to _ closes it immediately"]
pub struct Span {
    rec: Option<SpanRec>,
}

impl Span {
    /// Attach an argument. The conversion into [`ArgValue`] only happens
    /// when the span is recording, so `&str`/`String` args are free on the
    /// disabled path.
    pub fn arg(&mut self, key: &'static str, v: impl Into<ArgValue>) {
        if let Some(rec) = &mut self.rec {
            rec.args.push((key, v.into()));
        }
    }

    /// Whether this span will be recorded (i.e. the tracer was enabled).
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let end_ns = rec.buf.now_ns();
            let ev = TraceEvent {
                name: rec.name,
                cat: rec.cat,
                pid: rec.pid,
                tid: rec.tid,
                ts_ns: rec.start_ns,
                dur_ns: end_ns.saturating_sub(rec.start_ns),
                args: rec.args,
            };
            rec.buf.events.lock().unwrap().push(ev);
        }
    }
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// number of `ph:"X"` complete events
    pub spans: usize,
    /// distinct tracks (tids) carrying at least one span
    pub tracks: Vec<i64>,
    /// track names from `thread_name` metadata, tid-ordered
    pub track_names: Vec<(i64, String)>,
    /// distinct span names, sorted
    pub span_names: Vec<String>,
}

/// Validate a Chrome trace-event JSON document: structure, required event
/// fields, and that every track carrying spans is named via `thread_name`
/// metadata (what Perfetto uses to label timeline rows).
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("top-level object must carry a traceEvents array")?;
    let mut spans = 0usize;
    let mut tracks = std::collections::BTreeSet::new();
    let mut track_names = BTreeMap::new();
    let mut span_names = std::collections::BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string ph"))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string name"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("event {i}: missing integer tid"))?;
        ev.get("pid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("event {i}: missing integer pid"))?;
        match ph {
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X event missing numeric ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X event missing numeric dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                spans += 1;
                tracks.insert(tid);
                span_names.insert(name.to_string());
            }
            "M" if name == "thread_name" => {
                let tname = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: thread_name without args.name"))?;
                track_names.insert(tid, tname.to_string());
            }
            "M" => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for tid in &tracks {
        if !track_names.contains_key(tid) {
            return Err(format!("track {tid} carries spans but has no thread_name"));
        }
    }
    Ok(TraceSummary {
        spans,
        tracks: tracks.into_iter().collect(),
        track_names: track_names.into_iter().collect(),
        span_names: span_names.into_iter().collect(),
    })
}

/// Summary returned by [`validate_event_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLogSummary {
    /// number of event lines
    pub events: usize,
    /// distinct (pid, tid) pairs carrying events
    pub tracks: usize,
    /// distinct span names, sorted
    pub span_names: Vec<String>,
}

/// Validate a structured span log ([`Tracer::to_jsonl`] output): one JSON
/// object per line carrying `ts_us`/`dur_us`/`pid`/`tid`/`cat`/`name`,
/// with timestamps monotone non-decreasing within each (pid, tid) track.
pub fn validate_event_log(text: &str) -> Result<EventLogSummary, String> {
    let mut events = 0usize;
    let mut last_ts: BTreeMap<(i64, i64), f64> = BTreeMap::new();
    let mut span_names = std::collections::BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line).map_err(|e| format!("line {}: not valid JSON: {e}", i + 1))?;
        let ts = obj
            .get("ts_us")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing numeric ts_us", i + 1))?;
        let dur = obj
            .get("dur_us")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("line {}: missing numeric dur_us", i + 1))?;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("line {}: negative ts_us/dur_us", i + 1));
        }
        let pid = obj
            .get("pid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("line {}: missing integer pid", i + 1))?;
        let tid = obj
            .get("tid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("line {}: missing integer tid", i + 1))?;
        obj.get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing string cat", i + 1))?;
        let name = obj
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing string name", i + 1))?;
        let prev = last_ts.entry((pid, tid)).or_insert(0.0);
        if ts < *prev {
            return Err(format!(
                "line {}: ts_us {ts} regresses below {} on track ({pid}, {tid})",
                i + 1,
                *prev
            ));
        }
        *prev = ts;
        span_names.insert(name.to_string());
        events += 1;
    }
    if events == 0 {
        return Err("event log carries no events".into());
    }
    Ok(EventLogSummary {
        events,
        tracks: last_ts.len(),
        span_names: span_names.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        // The no-clock-read / no-allocation contract is asserted in the
        // isolated process test crates/trace/tests/zero_cost.rs (the global
        // clock counter would race with other unit tests here).
        let t = Tracer::disabled();
        for _ in 0..1000 {
            let mut s = t.span("stage", "parse");
            s.arg("n", 3u64);
            drop(s);
            let _named = t.span_dyn("cell", || unreachable!("dyn name built while disabled"));
        }
        t.set_thread_track(7, "worker-7");
        assert_eq!(t.event_count(), 0);
        assert!(t.to_chrome_json().is_none());
        assert!(t.to_jsonl().is_none());
    }

    #[test]
    fn enabled_tracer_records_spans_with_args_and_tracks() {
        let t = Tracer::enabled();
        t.set_thread_track(0, "main");
        {
            let mut s = t.span("stage", "parse");
            s.arg("n", 3u64);
            s.arg("kind", "orig");
        }
        {
            let _outer = t.span("cell", "outer");
            let _inner = t.span_dyn("stage", || format!("inner-{}", 1));
        }
        assert_eq!(t.event_count(), 3);
        let evs = t.events();
        assert_eq!(evs[0].name, "parse");
        assert_eq!(
            evs[0].args,
            vec![("n", ArgValue::I(3)), ("kind", ArgValue::S("orig".into()))]
        );
        // outer strictly encloses inner and sorts first at equal granularity
        let outer = evs.iter().find(|e| e.name == "outer").unwrap();
        let inner = evs.iter().find(|e| e.name == "inner-1").unwrap();
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns);
        assert_eq!(t.tracks(), vec![(0, "main".to_string())]);
    }

    #[test]
    fn chrome_export_validates_and_jsonl_lines_parse() {
        let t = Tracer::enabled();
        t.set_thread_track(1, "worker-1");
        {
            let mut s = t.span("stage", "simulate");
            s.arg("cycles", 99u64);
        }
        let chrome = t.to_chrome_json().unwrap();
        let summary = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.tracks, vec![1]);
        assert_eq!(summary.track_names, vec![(1, "worker-1".to_string())]);
        assert_eq!(summary.span_names, vec!["simulate".to_string()]);

        let jsonl = t.to_jsonl().unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        let obj = Json::parse(lines[0]).unwrap();
        assert_eq!(obj.get("name").and_then(Json::as_str), Some("simulate"));
        assert_eq!(obj.get("cat").and_then(Json::as_str), Some("stage"));
        assert_eq!(
            obj.get("args")
                .and_then(|a| a.get("cycles"))
                .and_then(Json::as_i64),
            Some(99)
        );
    }

    #[test]
    fn process_tracks_render_as_separate_perfetto_processes() {
        let t = Tracer::enabled();
        t.set_thread_track(0, "dispatcher");
        t.set_process_track(3, "shard-1");
        {
            let _s = t.span("shard", "chunk");
        }
        t.set_process_track(1, "slc");
        {
            let _s = t.span("batch", "reduce");
        }
        assert_eq!(t.processes(), vec![(3, "shard-1".to_string())]);
        let evs = t.events();
        // sort is (pid, tid, ts, ...): the pid-1 span precedes the pid-3 span
        assert_eq!(evs[0].name, "reduce");
        assert_eq!(evs[0].pid, 1);
        assert_eq!(evs[1].name, "chunk");
        assert_eq!(evs[1].pid, 3);

        let chrome = t.to_chrome_json().unwrap();
        let summary = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(summary.spans, 2);
        let doc = Json::parse(&chrome).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let proc_names: Vec<(i64, &str)> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| {
                (
                    e.get("pid").and_then(Json::as_i64).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(proc_names, vec![(1, "slc"), (3, "shard-1")]);

        let jsonl = t.to_jsonl().unwrap();
        let line = Json::parse(jsonl.lines().nth(1).unwrap()).unwrap();
        assert_eq!(line.get("pid").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn trace_ctx_round_trips_through_hex() {
        let ctx = TraceCtx::fresh();
        assert_ne!(ctx.trace_id, 0);
        assert_eq!(ctx.parent_span, 0);
        let back = TraceCtx::from_hex(&ctx.trace_id_hex(), &ctx.parent_span_hex()).unwrap();
        assert_eq!(back, ctx);
        let child = ctx.child(42);
        assert_eq!(child.trace_id, ctx.trace_id);
        assert_eq!(child.parent_span, 42);
        assert!(TraceCtx::from_hex("zz", "0").is_err());
    }

    #[test]
    fn first_ctx_binding_wins() {
        let t = Tracer::enabled();
        assert_eq!(t.ctx(), None);
        let a = TraceCtx {
            trace_id: 7,
            parent_span: 0,
        };
        t.set_ctx(a);
        t.set_ctx(TraceCtx {
            trace_id: 9,
            parent_span: 1,
        });
        assert_eq!(t.ctx(), Some(a));
        // disabled tracers hold no context
        let d = Tracer::disabled();
        d.set_ctx(a);
        assert_eq!(d.ctx(), None);
    }

    #[test]
    fn process_dump_merges_into_one_validating_trace() {
        let ctx = TraceCtx {
            trace_id: 0xabcd,
            parent_span: 0,
        };
        // "remote" process: a worker with two tracks and args
        let remote = Tracer::enabled();
        remote.set_ctx(ctx);
        remote.set_thread_track(0, "main");
        {
            let mut s = remote.span("stage", "simulate");
            s.arg("cycles", 99u64);
        }
        let dump = remote.export_process_dump("shard").unwrap();

        // local process: dispatcher with its own spans
        let local = Tracer::enabled();
        local.set_ctx(ctx);
        local.set_thread_track(0, "main");
        {
            let _s = local.span("batch", "batch.run");
        }
        let n = local.import_process_dump(&dump, 2, "shard-0").unwrap();
        assert_eq!(n, 1);
        assert_eq!(local.processes(), vec![(2, "shard".to_string())]);

        let chrome = local.to_chrome_json().unwrap();
        let summary = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(summary.spans, 2);
        // the imported span landed on pid 2 with its tid shifted off 0
        let evs = local.events();
        let imported = evs.iter().find(|e| e.name == "simulate").unwrap();
        assert_eq!((imported.pid, imported.tid), (2, 1));
        // merged doc carries the shared trace id
        assert!(chrome.contains("\"trace_id\": \"000000000000abcd\""));
        // args survive as a folded rendering
        assert!(matches!(&imported.args[0].1, ArgValue::S(s) if s.contains("cycles")));
    }

    #[test]
    fn import_rejects_foreign_trace_ids_and_bad_schemas() {
        let a = Tracer::enabled();
        a.set_ctx(TraceCtx {
            trace_id: 1,
            parent_span: 0,
        });
        let b = Tracer::enabled();
        b.set_ctx(TraceCtx {
            trace_id: 2,
            parent_span: 0,
        });
        b.set_thread_track(0, "main");
        {
            let _s = b.span("stage", "parse");
        }
        let dump = b.export_process_dump("other").unwrap();
        let err = a.import_process_dump(&dump, 2, "other").unwrap_err();
        assert!(err.contains("trace"), "{err}");
        assert!(a
            .import_process_dump("{\"schema\":\"nope\"}", 2, "x")
            .is_err());
        // a disabled importer is a no-op, not an error
        assert_eq!(
            Tracer::disabled()
                .import_process_dump(&dump, 2, "x")
                .unwrap(),
            0
        );
    }

    #[test]
    fn event_log_validator_checks_monotone_timestamps() {
        let t = Tracer::enabled();
        t.set_thread_track(0, "main");
        for _ in 0..3 {
            let _s = t.span("stage", "parse");
        }
        let log = t.to_jsonl().unwrap();
        let sum = validate_event_log(&log).unwrap();
        assert_eq!(sum.events, 3);
        assert_eq!(sum.tracks, 1);
        assert_eq!(sum.span_names, vec!["parse".to_string()]);

        assert!(validate_event_log("").is_err());
        assert!(validate_event_log("not json\n").is_err());
        let regress = "{\"ts_us\":5.0,\"dur_us\":1.0,\"pid\":1,\"tid\":0,\"cat\":\"c\",\"name\":\"a\"}\n\
                       {\"ts_us\":4.0,\"dur_us\":1.0,\"pid\":1,\"tid\":0,\"cat\":\"c\",\"name\":\"b\"}\n";
        assert!(validate_event_log(regress).unwrap_err().contains("regress"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace(r#"{"foo":1}"#).is_err());
        // span on an unnamed track
        let bad = r#"{"traceEvents":[{"ph":"X","name":"s","pid":1,"tid":4,"ts":0.0,"dur":1.0,"args":{}}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("thread_name"));
        // missing dur
        let bad2 = r#"{"traceEvents":[{"ph":"X","name":"s","pid":1,"tid":0,"ts":0.0}]}"#;
        assert!(validate_chrome_trace(bad2).is_err());
    }
}
