//! Hierarchical span collection with a Chrome trace-event exporter.
//!
//! A [`Tracer`] is a cheap clone-able handle that is either *disabled* (the
//! default — no buffer, no clock reads, no allocation; every operation is a
//! branch on a `None`) or *enabled* (backed by a shared, thread-safe
//! [`TraceBuf`]). Instrumented code asks the tracer for a [`Span`]; the span
//! records its start time on creation and pushes one complete event into the
//! buffer when dropped. Worker threads register a *track* (a Chrome `tid`)
//! once via [`Tracer::set_thread_track`]; spans pick the current thread's
//! track up from a thread-local, so a multi-threaded batch run renders as
//! one timeline row per worker in Perfetto / `chrome://tracing`.
//!
//! The disabled path is deliberately verifiable: every real timestamp read
//! bumps [`clock_reads`], so tests can assert that a disabled tracer
//! performs zero timer syscalls (see `crates/trace/tests/zero_cost.rs`,
//! which additionally proves zero allocation with a counting global
//! allocator).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Global count of real clock reads performed by enabled tracers. Test
/// guard for the zero-cost-when-disabled contract; never reset.
static CLOCK_READS: AtomicU64 = AtomicU64::new(0);

/// Total [`Instant::now`] calls made by the span layer so far.
pub fn clock_reads() -> u64 {
    CLOCK_READS.load(Ordering::Relaxed)
}

thread_local! {
    /// Chrome track id for spans opened on this thread (0 = main).
    static CURRENT_TID: Cell<u32> = const { Cell::new(0) };
    /// Chrome process id for spans opened on this thread (1 = the slc
    /// process itself; the sharded batch dispatcher binds one synthetic
    /// process per worker shard so every shard renders as its own
    /// Perfetto process track).
    static CURRENT_PID: Cell<u32> = const { Cell::new(1) };
}

/// A span argument value (rendered into the Chrome event's `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// integer argument
    I(i64),
    /// float argument
    F(f64),
    /// string argument
    S(String),
    /// boolean argument
    B(bool),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::I(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::from(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::I(i64::from(v))
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::B(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::S(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::S(v)
    }
}

impl From<ArgValue> for Json {
    fn from(v: ArgValue) -> Json {
        match v {
            ArgValue::I(i) => Json::Int(i),
            ArgValue::F(f) => Json::Float(f),
            ArgValue::S(s) => Json::Str(s),
            ArgValue::B(b) => Json::Bool(b),
        }
    }
}

/// One completed span, relative to the buffer's origin instant.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// span name (Chrome `name`)
    pub name: String,
    /// span category (Chrome `cat`): `"batch"`, `"stage"`, `"pass"`,
    /// `"slms"`, `"sim"`, `"verify"`, `"interp"`, `"shard"`
    pub cat: &'static str,
    /// process (Chrome `pid`): 1 = the slc process; 2.. = synthetic
    /// per-shard processes registered via [`Tracer::set_process_track`]
    pub pid: u32,
    /// track (Chrome `tid`): 0 = orchestrating thread, 1.. = workers
    pub tid: u32,
    /// start offset from the tracer's origin, nanoseconds
    pub ts_ns: u64,
    /// duration, nanoseconds
    pub dur_ns: u64,
    /// span arguments
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Shared collection buffer behind an enabled [`Tracer`].
#[derive(Debug)]
pub struct TraceBuf {
    t0: Instant,
    events: Mutex<Vec<TraceEvent>>,
    tracks: Mutex<BTreeMap<u32, String>>,
    processes: Mutex<BTreeMap<u32, String>>,
}

impl TraceBuf {
    fn now_ns(&self) -> u64 {
        CLOCK_READS.fetch_add(1, Ordering::Relaxed);
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Span collector handle: disabled (no-op, zero-cost) or enabled.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<Arc<TraceBuf>>,
}

impl Tracer {
    /// The no-op collector: spans neither read the clock nor allocate.
    pub fn disabled() -> Tracer {
        Tracer { buf: None }
    }

    /// A fresh collector with its origin at "now".
    pub fn enabled() -> Tracer {
        CLOCK_READS.fetch_add(1, Ordering::Relaxed);
        Tracer {
            buf: Some(Arc::new(TraceBuf {
                t0: Instant::now(),
                events: Mutex::new(Vec::new()),
                tracks: Mutex::new(BTreeMap::new()),
                processes: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Bind the calling thread to Chrome track `tid`, naming it on first
    /// registration. Call once per worker before opening spans.
    pub fn set_thread_track(&self, tid: u32, name: &str) {
        if let Some(buf) = &self.buf {
            CURRENT_TID.set(tid);
            let mut tracks = buf.tracks.lock().unwrap();
            tracks.entry(tid).or_insert_with(|| name.to_string());
        }
    }

    /// Bind the calling thread to Chrome process `pid`, naming it on first
    /// registration. Process 1 is the slc process itself ("slc") and needs
    /// no registration; the sharded batch dispatcher registers `2 + shard`
    /// per worker shard so each shard renders as its own Perfetto process
    /// track. Call `set_process_track(1, "slc")` to return spans to the
    /// default process.
    pub fn set_process_track(&self, pid: u32, name: &str) {
        if let Some(buf) = &self.buf {
            CURRENT_PID.set(pid);
            if pid != 1 {
                let mut procs = buf.processes.lock().unwrap();
                procs.entry(pid).or_insert_with(|| name.to_string());
            }
        }
    }

    /// Open a span with a static name. Closed (recorded) on drop.
    pub fn span(&self, cat: &'static str, name: &str) -> Span {
        match &self.buf {
            None => Span { rec: None },
            Some(buf) => Span {
                rec: Some(SpanRec {
                    start_ns: buf.now_ns(),
                    buf: Arc::clone(buf),
                    name: name.to_string(),
                    cat,
                    pid: CURRENT_PID.get(),
                    tid: CURRENT_TID.get(),
                    args: Vec::new(),
                }),
            },
        }
    }

    /// Open a span whose name is built lazily — `make` runs only when the
    /// tracer is enabled, so dynamic names cost nothing when disabled.
    pub fn span_dyn(&self, cat: &'static str, make: impl FnOnce() -> String) -> Span {
        match &self.buf {
            None => Span { rec: None },
            Some(_) => self.span(cat, &make()),
        }
    }

    /// Number of completed spans recorded so far.
    pub fn event_count(&self) -> usize {
        self.buf
            .as_ref()
            .map_or(0, |b| b.events.lock().unwrap().len())
    }

    /// Snapshot of completed spans, sorted by (process, track, start,
    /// longest-first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(buf) = &self.buf else {
            return Vec::new();
        };
        let mut evs = buf.events.lock().unwrap().clone();
        evs.sort_by(|a, b| {
            (a.pid, a.tid, a.ts_ns, std::cmp::Reverse(a.dur_ns), &a.name).cmp(&(
                b.pid,
                b.tid,
                b.ts_ns,
                std::cmp::Reverse(b.dur_ns),
                &b.name,
            ))
        });
        evs
    }

    /// Registered (track id, name) pairs, id-ordered.
    pub fn tracks(&self) -> Vec<(u32, String)> {
        self.buf.as_ref().map_or(Vec::new(), |b| {
            b.tracks
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect()
        })
    }

    /// Registered synthetic (process id, name) pairs, id-ordered. Does not
    /// include the implicit process 1 ("slc").
    pub fn processes(&self) -> Vec<(u32, String)> {
        self.buf.as_ref().map_or(Vec::new(), |b| {
            b.processes
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (*k, v.clone()))
                .collect()
        })
    }

    /// Export the Chrome trace-event document (the JSON Object Format:
    /// `{"traceEvents": [...]}`), loadable in Perfetto. `None` if disabled.
    ///
    /// Emitted events: one `ph:"M"` `process_name` record per process (the
    /// implicit pid 1 "slc" plus every registered synthetic process), one
    /// `ph:"M"` `thread_name` record per registered track (and a tid-0
    /// `thread_name` per synthetic process so Perfetto labels its single
    /// row), then every span as a `ph:"X"` complete event with microsecond
    /// `ts`/`dur`.
    pub fn to_chrome_json(&self) -> Option<String> {
        self.buf.as_ref()?;
        let mut events = Vec::new();
        events.push(
            Json::obj()
                .field("ph", "M")
                .field("name", "process_name")
                .field("pid", 1i64)
                .field("tid", 0i64)
                .field("args", Json::obj().field("name", "slc")),
        );
        for (pid, name) in self.processes() {
            events.push(
                Json::obj()
                    .field("ph", "M")
                    .field("name", "process_name")
                    .field("pid", pid)
                    .field("tid", 0i64)
                    .field("args", Json::obj().field("name", name.as_str())),
            );
            events.push(
                Json::obj()
                    .field("ph", "M")
                    .field("name", "thread_name")
                    .field("pid", pid)
                    .field("tid", 0i64)
                    .field("args", Json::obj().field("name", name)),
            );
        }
        for (tid, name) in self.tracks() {
            events.push(
                Json::obj()
                    .field("ph", "M")
                    .field("name", "thread_name")
                    .field("pid", 1i64)
                    .field("tid", tid)
                    .field("args", Json::obj().field("name", name)),
            );
        }
        for ev in self.events() {
            let mut args = Json::obj();
            for (k, v) in ev.args {
                args = args.field(k, v);
            }
            events.push(
                Json::obj()
                    .field("ph", "X")
                    .field("name", ev.name)
                    .field("cat", ev.cat)
                    .field("pid", ev.pid)
                    .field("tid", ev.tid)
                    .field("ts", ev.ts_ns as f64 / 1000.0)
                    .field("dur", ev.dur_ns as f64 / 1000.0)
                    .field("args", args),
            );
        }
        let doc = Json::obj()
            .field("displayTimeUnit", "ms")
            .field("otherData", Json::obj().field("generator", "slc-trace"))
            .field("traceEvents", Json::Arr(events));
        Some(doc.to_pretty())
    }

    /// Export the structured event log: one compact JSON object per line
    /// (`ts_us`, `dur_us`, `pid`, `tid`, `cat`, `name`, `args`). `None` if
    /// disabled.
    pub fn to_jsonl(&self) -> Option<String> {
        self.buf.as_ref()?;
        let mut out = String::new();
        for ev in self.events() {
            let mut args = Json::obj();
            for (k, v) in ev.args {
                args = args.field(k, v);
            }
            let line = Json::obj()
                .field("ts_us", ev.ts_ns as f64 / 1000.0)
                .field("dur_us", ev.dur_ns as f64 / 1000.0)
                .field("pid", ev.pid)
                .field("tid", ev.tid)
                .field("cat", ev.cat)
                .field("name", ev.name)
                .field("args", args);
            out.push_str(&line.to_string());
            out.push('\n');
        }
        Some(out)
    }
}

struct SpanRec {
    buf: Arc<TraceBuf>,
    name: String,
    cat: &'static str,
    pid: u32,
    tid: u32,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl std::fmt::Debug for SpanRec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRec")
            .field("name", &self.name)
            .field("cat", &self.cat)
            .finish_non_exhaustive()
    }
}

/// An open span; records one complete event when dropped. Obtained from
/// [`Tracer::span`] / [`Tracer::span_dyn`].
#[derive(Debug)]
#[must_use = "a span records its duration when dropped; binding it to _ closes it immediately"]
pub struct Span {
    rec: Option<SpanRec>,
}

impl Span {
    /// Attach an argument. The conversion into [`ArgValue`] only happens
    /// when the span is recording, so `&str`/`String` args are free on the
    /// disabled path.
    pub fn arg(&mut self, key: &'static str, v: impl Into<ArgValue>) {
        if let Some(rec) = &mut self.rec {
            rec.args.push((key, v.into()));
        }
    }

    /// Whether this span will be recorded (i.e. the tracer was enabled).
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(rec) = self.rec.take() {
            let end_ns = rec.buf.now_ns();
            let ev = TraceEvent {
                name: rec.name,
                cat: rec.cat,
                pid: rec.pid,
                tid: rec.tid,
                ts_ns: rec.start_ns,
                dur_ns: end_ns.saturating_sub(rec.start_ns),
                args: rec.args,
            };
            rec.buf.events.lock().unwrap().push(ev);
        }
    }
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// number of `ph:"X"` complete events
    pub spans: usize,
    /// distinct tracks (tids) carrying at least one span
    pub tracks: Vec<i64>,
    /// track names from `thread_name` metadata, tid-ordered
    pub track_names: Vec<(i64, String)>,
    /// distinct span names, sorted
    pub span_names: Vec<String>,
}

/// Validate a Chrome trace-event JSON document: structure, required event
/// fields, and that every track carrying spans is named via `thread_name`
/// metadata (what Perfetto uses to label timeline rows).
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("top-level object must carry a traceEvents array")?;
    let mut spans = 0usize;
    let mut tracks = std::collections::BTreeSet::new();
    let mut track_names = BTreeMap::new();
    let mut span_names = std::collections::BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string ph"))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string name"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("event {i}: missing integer tid"))?;
        ev.get("pid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("event {i}: missing integer pid"))?;
        match ph {
            "X" => {
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X event missing numeric ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X event missing numeric dur"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                spans += 1;
                tracks.insert(tid);
                span_names.insert(name.to_string());
            }
            "M" if name == "thread_name" => {
                let tname = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: thread_name without args.name"))?;
                track_names.insert(tid, tname.to_string());
            }
            "M" => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for tid in &tracks {
        if !track_names.contains_key(tid) {
            return Err(format!("track {tid} carries spans but has no thread_name"));
        }
    }
    Ok(TraceSummary {
        spans,
        tracks: tracks.into_iter().collect(),
        track_names: track_names.into_iter().collect(),
        span_names: span_names.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        // The no-clock-read / no-allocation contract is asserted in the
        // isolated process test crates/trace/tests/zero_cost.rs (the global
        // clock counter would race with other unit tests here).
        let t = Tracer::disabled();
        for _ in 0..1000 {
            let mut s = t.span("stage", "parse");
            s.arg("n", 3u64);
            drop(s);
            let _named = t.span_dyn("cell", || unreachable!("dyn name built while disabled"));
        }
        t.set_thread_track(7, "worker-7");
        assert_eq!(t.event_count(), 0);
        assert!(t.to_chrome_json().is_none());
        assert!(t.to_jsonl().is_none());
    }

    #[test]
    fn enabled_tracer_records_spans_with_args_and_tracks() {
        let t = Tracer::enabled();
        t.set_thread_track(0, "main");
        {
            let mut s = t.span("stage", "parse");
            s.arg("n", 3u64);
            s.arg("kind", "orig");
        }
        {
            let _outer = t.span("cell", "outer");
            let _inner = t.span_dyn("stage", || format!("inner-{}", 1));
        }
        assert_eq!(t.event_count(), 3);
        let evs = t.events();
        assert_eq!(evs[0].name, "parse");
        assert_eq!(
            evs[0].args,
            vec![("n", ArgValue::I(3)), ("kind", ArgValue::S("orig".into()))]
        );
        // outer strictly encloses inner and sorts first at equal granularity
        let outer = evs.iter().find(|e| e.name == "outer").unwrap();
        let inner = evs.iter().find(|e| e.name == "inner-1").unwrap();
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns);
        assert_eq!(t.tracks(), vec![(0, "main".to_string())]);
    }

    #[test]
    fn chrome_export_validates_and_jsonl_lines_parse() {
        let t = Tracer::enabled();
        t.set_thread_track(1, "worker-1");
        {
            let mut s = t.span("stage", "simulate");
            s.arg("cycles", 99u64);
        }
        let chrome = t.to_chrome_json().unwrap();
        let summary = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.tracks, vec![1]);
        assert_eq!(summary.track_names, vec![(1, "worker-1".to_string())]);
        assert_eq!(summary.span_names, vec!["simulate".to_string()]);

        let jsonl = t.to_jsonl().unwrap();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        let obj = Json::parse(lines[0]).unwrap();
        assert_eq!(obj.get("name").and_then(Json::as_str), Some("simulate"));
        assert_eq!(obj.get("cat").and_then(Json::as_str), Some("stage"));
        assert_eq!(
            obj.get("args")
                .and_then(|a| a.get("cycles"))
                .and_then(Json::as_i64),
            Some(99)
        );
    }

    #[test]
    fn process_tracks_render_as_separate_perfetto_processes() {
        let t = Tracer::enabled();
        t.set_thread_track(0, "dispatcher");
        t.set_process_track(3, "shard-1");
        {
            let _s = t.span("shard", "chunk");
        }
        t.set_process_track(1, "slc");
        {
            let _s = t.span("batch", "reduce");
        }
        assert_eq!(t.processes(), vec![(3, "shard-1".to_string())]);
        let evs = t.events();
        // sort is (pid, tid, ts, ...): the pid-1 span precedes the pid-3 span
        assert_eq!(evs[0].name, "reduce");
        assert_eq!(evs[0].pid, 1);
        assert_eq!(evs[1].name, "chunk");
        assert_eq!(evs[1].pid, 3);

        let chrome = t.to_chrome_json().unwrap();
        let summary = validate_chrome_trace(&chrome).unwrap();
        assert_eq!(summary.spans, 2);
        let doc = Json::parse(&chrome).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let proc_names: Vec<(i64, &str)> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .map(|e| {
                (
                    e.get("pid").and_then(Json::as_i64).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .unwrap(),
                )
            })
            .collect();
        assert_eq!(proc_names, vec![(1, "slc"), (3, "shard-1")]);

        let jsonl = t.to_jsonl().unwrap();
        let line = Json::parse(jsonl.lines().nth(1).unwrap()).unwrap();
        assert_eq!(line.get("pid").and_then(Json::as_i64), Some(3));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace(r#"{"foo":1}"#).is_err());
        // span on an unnamed track
        let bad = r#"{"traceEvents":[{"ph":"X","name":"s","pid":1,"tid":4,"ts":0.0,"dur":1.0,"args":{}}]}"#;
        assert!(validate_chrome_trace(bad)
            .unwrap_err()
            .contains("thread_name"));
        // missing dur
        let bad2 = r#"{"traceEvents":[{"ph":"X","name":"s","pid":1,"tid":0,"ts":0.0}]}"#;
        assert!(validate_chrome_trace(bad2).is_err());
    }
}
