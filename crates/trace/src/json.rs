//! A tiny deterministic JSON value, writer and reader.
//!
//! The batch report must be byte-identical across runs and thread counts,
//! so rather than depend on an (unavailable) serde stack we build the
//! document explicitly: object members keep insertion order, floats print
//! through Rust's shortest-roundtrip `Display` (stable for equal bit
//! patterns), and strings are escaped per RFC 8259. The reader side
//! ([`Json::parse`]) exists for the artifacts we consume back: the
//! checked-in counter baseline (`BENCH_counters.json`) and Chrome-trace
//! schema validation (`slc trace-check`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// integer (i64 covers every counter we emit; u64 counters are
    /// range-checked on construction)
    Int(i64),
    /// finite float; non-finite values serialize as `null`
    Float(f64),
    /// string
    Str(String),
    /// array
    Arr(Vec<Json>),
    /// object with insertion-ordered members
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a member to an object (panics on non-objects — builder use
    /// only).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Serialize with two-space indentation, deterministically.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parse a JSON document. The whole input must be consumed (modulo
    /// trailing whitespace); errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on objects (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric payload widened to f64 (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (k, it) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    it.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (k, (key, val)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    val.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (k, it) in items.iter().enumerate() {
                    if k > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    it.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (k, (key, val)) in members.iter().enumerate() {
                    if k > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    val.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Compact (no whitespace), deterministic serialization; `to_string()`
/// comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| format!("unterminated string at byte {}", self.pos))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("dangling escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode \uD800-\uDBFF followed
                            // by \uDC00-\uDFFF; lone surrogates become U+FFFD.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let full =
                                        0x10000 + ((cp - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                    char::from_u32(full).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => {
                    // Re-decode from the underlying UTF-8 for multi-byte chars.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let rest = &self.bytes[start..];
                        let s = std::str::from_utf8(rest)
                            .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                        let c = s.chars().next().unwrap();
                        out.push(c);
                        self.pos = start + c.len_utf8();
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(format!("short \\u escape at byte {}", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            s.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            s.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Display prints the shortest representation that round-trips; force a
    // decimal point so integral floats stay floats on re-read.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(i64::try_from(v).expect("counter exceeds i64::MAX"))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_shape() {
        let j = Json::obj()
            .field("name", "kernel1")
            .field("cycles", 1234u64)
            .field("speedup", 1.5f64)
            .field("ms", Json::Null)
            .field("flags", Json::Arr(vec![Json::Bool(true), Json::Int(-2)]));
        assert_eq!(
            j.to_string(),
            r#"{"name":"kernel1","cycles":1234,"speedup":1.5,"ms":null,"flags":[true,-2]}"#
        );
    }

    #[test]
    fn floats_keep_a_point_and_escape_works() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).to_string(), r#""a\"b\n""#);
    }

    #[test]
    fn pretty_is_stable() {
        let j = Json::obj().field("a", 1i64).field("b", Json::Arr(vec![]));
        let p = j.to_pretty();
        assert_eq!(p, "{\n  \"a\": 1,\n  \"b\": []\n}\n");
        assert_eq!(p, j.to_pretty());
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj()
            .field("name", "k\"1\n")
            .field("n", -42i64)
            .field("x", 1.5f64)
            .field("none", Json::Null)
            .field("ok", true)
            .field("xs", Json::Arr(vec![Json::Int(1), Json::Str("é".into())]));
        for text in [j.to_string(), j.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), j);
        }
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""aA\té😀""#.trim()).unwrap(),
            Json::Str("aA\té😀".into())
        );
        assert_eq!(
            Json::parse(" [ 1 , 2.5 ,\n true ] ").unwrap(),
            Json::Arr(vec![Json::Int(1), Json::Float(2.5), Json::Bool(true)])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"a":{"b":[1,2]},"s":"x","f":2.5}"#).unwrap();
        assert_eq!(
            j.get("a")
                .and_then(|a| a.get("b"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(j.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(j.get("a").and_then(Json::as_i64), None);
    }
}
