//! Always-on flight recorder: a fixed-capacity ring of recent events.
//!
//! Post-mortem observability for the process tiers the tracer cannot
//! reach: a shard worker that aborts mid-chunk, a daemon thread that
//! panics, a hung process someone wants to inspect via the `dump` serve
//! verb. Unlike the [`crate::Tracer`] — opt-in, unbounded, span-shaped —
//! the recorder is *always on*: a single process-global ring of the last
//! [`FlightRecorder::capacity`] events, pre-allocated once, overwritten
//! oldest-first, recording with **no allocation in steady state** (event
//! names are `&'static str`, slots are fixed-size, the ring never grows;
//! `crates/trace/tests/zero_cost.rs` proves it with a counting global
//! allocator).
//!
//! Three paths read the ring back out as JSONL
//! ([`FlightRecorder::dump_jsonl`], schema [`FLIGHT_SCHEMA`]):
//!
//! - the panic hook installed by [`install_panic_hook`] dumps it to
//!   stderr after the default hook, so a crashed process leaves its last
//!   moments behind;
//! - the shard worker ships a tail of its ring with every `cells`
//!   message, and the dispatcher's quarantine path attaches the dead
//!   worker's last snapshot to the `slc-batch-timing-v4` sidecar;
//! - the daemon answers the `dump` verb with the full ring on demand.
//!
//! [`validate_flight_dump`] re-checks a dump (header schema line, known
//! event kinds, monotone timestamps) and backs `slc trace-check`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Schema identifier on the first (header) line of a flight-recorder dump.
pub const FLIGHT_SCHEMA: &str = "slc-flight-v1";

/// Default capacity of the process-global ring (events, not bytes).
pub const DEFAULT_CAPACITY: usize = 4096;

/// What a recorded event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecKind {
    /// a unit of work began (miss closure, request, chunk)
    Enter,
    /// a unit of work completed
    Exit,
    /// a counter-style observation (value in `a`)
    Counter,
    /// a point-in-time marker
    Mark,
}

impl RecKind {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            RecKind::Enter => "enter",
            RecKind::Exit => "exit",
            RecKind::Counter => "counter",
            RecKind::Mark => "mark",
        }
    }

    /// Inverse of [`RecKind::label`].
    pub fn from_label(s: &str) -> Option<RecKind> {
        Some(match s {
            "enter" => RecKind::Enter,
            "exit" => RecKind::Exit,
            "counter" => RecKind::Counter,
            "mark" => RecKind::Mark,
            _ => return None,
        })
    }
}

/// One fixed-size ring slot.
#[derive(Debug, Clone, Copy)]
pub struct RecEvent {
    /// nanoseconds since the recorder's origin
    pub ts_ns: u64,
    /// event kind
    pub kind: RecKind,
    /// static event name (no allocation on record)
    pub name: &'static str,
    /// first payload word (kind-specific: a count, a key, a shard index)
    pub a: u64,
    /// second payload word
    pub b: u64,
}

struct Ring {
    buf: Vec<RecEvent>,
    /// next slot to write (wraps at capacity once full)
    next: usize,
}

/// The fixed-capacity event ring. Usually used through
/// [`FlightRecorder::global`]; tests construct private instances.
pub struct FlightRecorder {
    t0: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
    /// total events ever recorded (recorded - min(recorded, capacity) =
    /// dropped)
    recorded: AtomicU64,
}

impl FlightRecorder {
    /// A fresh recorder; the ring is fully pre-allocated here so steady
    /// state never touches the allocator.
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            t0: Instant::now(),
            capacity,
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                next: 0,
            }),
            recorded: AtomicU64::new(0),
        }
    }

    /// The process-global recorder (capacity [`DEFAULT_CAPACITY`]),
    /// created on first use.
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(|| FlightRecorder::new(DEFAULT_CAPACITY))
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event. Steady state (ring full) overwrites the oldest
    /// slot in place: one clock read, one mutex lock, zero allocations.
    pub fn record(&self, kind: RecKind, name: &'static str, a: u64, b: u64) {
        let ts_ns = u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ev = RecEvent {
            ts_ns,
            kind,
            name,
            a,
            b,
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
        } else {
            let slot = ring.next;
            ring.buf[slot] = ev;
        }
        ring.next = (ring.next + 1) % self.capacity;
        drop(ring);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the ring contents out, oldest first.
    pub fn snapshot(&self) -> Vec<RecEvent> {
        let ring = self.ring.lock().unwrap();
        let n = ring.buf.len();
        let mut out = Vec::with_capacity(n);
        let start = if n < self.capacity { 0 } else { ring.next };
        for i in 0..n {
            out.push(ring.buf[(start + i) % n.max(1)]);
        }
        out
    }

    /// Render the full ring as a JSONL dump: one header object
    /// (`schema`/`pid`/`capacity`/`recorded`/`dropped`) followed by one
    /// object per event, oldest first.
    pub fn dump_jsonl(&self) -> String {
        self.dump_jsonl_tail(usize::MAX)
    }

    /// Like [`FlightRecorder::dump_jsonl`] but keeping only the newest
    /// `max` events — what the shard worker ships with each `cells`
    /// message to bound the wire cost.
    pub fn dump_jsonl_tail(&self, max: usize) -> String {
        let snap = self.snapshot();
        let skip = snap.len().saturating_sub(max);
        let recorded = self.recorded();
        let mut out = String::new();
        let header = Json::obj()
            .field("schema", FLIGHT_SCHEMA)
            .field("pid", std::process::id() as u64)
            .field("capacity", self.capacity)
            .field("recorded", recorded)
            .field(
                "dropped",
                recorded.saturating_sub((snap.len() - skip) as u64),
            );
        out.push_str(&header.to_string());
        out.push('\n');
        for ev in &snap[skip..] {
            // a/b are hex strings: payload words are often full-width
            // content-hash keys, which the i64-ranged Json integer cannot
            // carry
            let line = Json::obj()
                .field("ts_ns", ev.ts_ns)
                .field("kind", ev.kind.label())
                .field("name", ev.name)
                .field("a", format!("{:x}", ev.a))
                .field("b", format!("{:x}", ev.b));
            out.push_str(&line.to_string());
            out.push('\n');
        }
        out
    }

    /// Drop all held events (test isolation).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap();
        ring.buf.clear();
        ring.next = 0;
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded())
            .finish_non_exhaustive()
    }
}

/// Install a panic hook (once) that dumps the global ring to stderr after
/// the default hook, so a crashing daemon or shard worker leaves its last
/// recorded moments behind as JSONL.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            // a panic inside a panic hook aborts the process with no
            // output at all — never let the dump path take that risk
            let dump = std::panic::catch_unwind(|| FlightRecorder::global().dump_jsonl());
            if let Ok(dump) = dump {
                eprintln!("--- slc flight recorder ({FLIGHT_SCHEMA}) ---");
                eprint!("{dump}");
                eprintln!("--- end flight recorder ---");
            }
        }));
    });
}

/// Summary returned by [`validate_flight_dump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightSummary {
    /// event lines (excluding the header)
    pub events: usize,
    /// distinct event kinds present, sorted
    pub kinds: Vec<String>,
    /// total recorded per the header (≥ events)
    pub recorded: u64,
}

/// Validate a flight-recorder JSONL dump: a [`FLIGHT_SCHEMA`] header line,
/// then one event object per line with a known `kind`, a string `name`,
/// and monotone non-decreasing `ts_ns` (one process = one clock).
pub fn validate_flight_dump(text: &str) -> Result<FlightSummary, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty flight dump")?;
    let header = Json::parse(header).map_err(|e| format!("header: not valid JSON: {e}"))?;
    match header.get("schema").and_then(Json::as_str) {
        Some(FLIGHT_SCHEMA) => {}
        other => return Err(format!("unknown flight dump schema {other:?}")),
    }
    header
        .get("pid")
        .and_then(Json::as_i64)
        .ok_or("header: missing integer pid")?;
    let recorded = header
        .get("recorded")
        .and_then(Json::as_i64)
        .ok_or("header: missing integer recorded")? as u64;
    let mut events = 0usize;
    let mut kinds = std::collections::BTreeSet::new();
    let mut last_ts = 0u64;
    for (i, line) in lines {
        let obj = Json::parse(line).map_err(|e| format!("line {}: not valid JSON: {e}", i + 1))?;
        let ts = obj
            .get("ts_ns")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("line {}: missing integer ts_ns", i + 1))?
            as u64;
        let kind = obj
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing string kind", i + 1))?;
        if RecKind::from_label(kind).is_none() {
            return Err(format!("line {}: unknown event kind `{kind}`", i + 1));
        }
        obj.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing string name", i + 1))?;
        if ts < last_ts {
            return Err(format!(
                "line {}: ts_ns {ts} regresses below {last_ts}",
                i + 1
            ));
        }
        last_ts = ts;
        kinds.insert(kind.to_string());
        events += 1;
    }
    if recorded < events as u64 {
        return Err(format!(
            "header claims {recorded} recorded but the dump carries {events} events"
        ));
    }
    Ok(FlightSummary {
        events,
        kinds: kinds.into_iter().collect(),
        recorded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(RecKind::Mark, "tick", i, 0);
        }
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.len(), 4);
        let snap = r.snapshot();
        let seq: Vec<u64> = snap.iter().map(|e| e.a).collect();
        assert_eq!(seq, vec![6, 7, 8, 9], "oldest-first tail survives");
        // timestamps monotone oldest→newest
        assert!(snap.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn dump_round_trips_through_the_validator() {
        let r = FlightRecorder::new(8);
        r.record(RecKind::Enter, "plan.miss", 1, 0);
        r.record(RecKind::Counter, "mis_placed", 7, 0);
        r.record(RecKind::Exit, "plan.miss", 1, 0);
        let dump = r.dump_jsonl();
        let sum = validate_flight_dump(&dump).unwrap();
        assert_eq!(sum.events, 3);
        assert_eq!(sum.kinds, vec!["counter", "enter", "exit"]);
        assert_eq!(sum.recorded, 3);

        let tail = r.dump_jsonl_tail(1);
        let sum = validate_flight_dump(&tail).unwrap();
        assert_eq!(sum.events, 1);
        assert_eq!(sum.recorded, 3);
    }

    #[test]
    fn validator_rejects_malformed_dumps() {
        assert!(validate_flight_dump("").is_err());
        assert!(validate_flight_dump("{\"schema\":\"nope\"}\n").is_err());
        let hdr =
            "{\"schema\":\"slc-flight-v1\",\"pid\":1,\"capacity\":4,\"recorded\":2,\"dropped\":0}";
        let bad_kind =
            format!("{hdr}\n{{\"ts_ns\":1,\"kind\":\"whee\",\"name\":\"x\",\"a\":0,\"b\":0}}\n");
        assert!(validate_flight_dump(&bad_kind)
            .unwrap_err()
            .contains("kind"));
        let regress = format!(
            "{hdr}\n{{\"ts_ns\":5,\"kind\":\"mark\",\"name\":\"x\",\"a\":0,\"b\":0}}\n\
             {{\"ts_ns\":4,\"kind\":\"mark\",\"name\":\"y\",\"a\":0,\"b\":0}}\n"
        );
        assert!(validate_flight_dump(&regress)
            .unwrap_err()
            .contains("regress"));
        let lying_hdr =
            "{\"schema\":\"slc-flight-v1\",\"pid\":1,\"capacity\":4,\"recorded\":0,\"dropped\":0}";
        let lying = format!(
            "{lying_hdr}\n{{\"ts_ns\":1,\"kind\":\"mark\",\"name\":\"x\",\"a\":0,\"b\":0}}\n"
        );
        assert!(validate_flight_dump(&lying).is_err());
    }

    #[test]
    fn global_recorder_is_always_on() {
        let g = FlightRecorder::global();
        let before = g.recorded();
        g.record(RecKind::Mark, "test.global", 0, 0);
        assert!(g.recorded() > before);
        assert!(validate_flight_dump(&g.dump_jsonl()).is_ok());
    }
}
