//! slc-trace: spans, deterministic counters, and JSON plumbing.
//!
//! The observability layer for the SLMS workspace, sitting at the bottom of
//! the crate graph (no dependencies) so every layer — batch engine, pass
//! manager, SLMS core, verifier, simulators — can emit into it:
//!
//! * [`span`] — hierarchical wall-clock spans behind a clone-able
//!   [`Tracer`] handle that is a guaranteed no-op (no clock reads, no
//!   allocation) when disabled, with Chrome trace-event and JSONL exporters
//!   plus a schema validator for the emitted documents.
//! * [`counters`] — the [`CounterRegistry`] of *deterministic* counters
//!   (thread-count- and wall-clock-invariant work measures) and the
//!   count-based CI gate ([`check_counters`]) against a checked-in
//!   baseline.
//! * [`json`] — the deterministic JSON value/writer the whole workspace
//!   uses for reports (moved here from slc-pipeline), now with a reader
//!   ([`Json::parse`]) for baselines and trace validation.
//!
//! The cardinal rule, enforced by differential tests at the pipeline layer:
//! wall-clock readings flow only into spans and timing sidecars, never into
//! counters, cache keys, or the canonical batch report.

#![warn(missing_docs)]

pub mod counters;
pub mod json;
pub mod span;

pub use counters::{
    check_counters, CounterBaseline, CounterRegistry, GateFailure, COUNTERS_SCHEMA,
};
pub use json::Json;
pub use span::{
    clock_reads, validate_chrome_trace, ArgValue, Span, TraceEvent, TraceSummary, Tracer,
};
