//! slc-trace: spans, deterministic counters, and JSON plumbing.
//!
//! The observability layer for the SLMS workspace, sitting at the bottom of
//! the crate graph (no dependencies) so every layer — batch engine, pass
//! manager, SLMS core, verifier, simulators — can emit into it:
//!
//! * [`span`] — hierarchical wall-clock spans behind a clone-able
//!   [`Tracer`] handle that is a guaranteed no-op (no clock reads, no
//!   allocation) when disabled, with Chrome trace-event and JSONL exporters
//!   plus a schema validator for the emitted documents.
//! * [`counters`] — the [`CounterRegistry`] of *deterministic* counters
//!   (thread-count- and wall-clock-invariant work measures) and the
//!   count-based CI gate ([`check_counters`]) against a checked-in
//!   baseline.
//! * [`hist`] — deterministic log2-bucketed [`Histogram`]s that keep the
//!   *distribution* of work (SAT conflicts per solve, MIs per loop) under
//!   the same determinism contract as the counters, plus the histogram CI
//!   gate ([`check_histograms`]).
//! * [`recorder`] — the always-on [`FlightRecorder`]: a fixed-capacity,
//!   allocation-free ring of recent events, dumped as JSONL on panic, on
//!   shard death, or on demand for post-mortem debugging.
//! * [`json`] — the deterministic JSON value/writer the whole workspace
//!   uses for reports (moved here from slc-pipeline), now with a reader
//!   ([`Json::parse`]) for baselines and trace validation.
//!
//! The cardinal rule, enforced by differential tests at the pipeline layer:
//! wall-clock readings flow only into spans and timing sidecars, never into
//! counters, cache keys, or the canonical batch report.

#![warn(missing_docs)]

pub mod counters;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod span;

pub use counters::{
    check_counters, CounterBaseline, CounterRegistry, GateFailure, COUNTERS_SCHEMA,
};
pub use hist::{
    bucket_of, bucket_upper, check_histograms, Histogram, HistogramBaseline, HistogramRegistry,
    HISTOGRAMS_SCHEMA,
};
pub use json::Json;
pub use recorder::{
    install_panic_hook, validate_flight_dump, FlightRecorder, FlightSummary, RecEvent, RecKind,
    FLIGHT_SCHEMA,
};
pub use span::{
    clock_reads, validate_chrome_trace, validate_event_log, ArgValue, EventLogSummary, Span,
    TraceCtx, TraceEvent, TraceSummary, Tracer, SPAN_DUMP_SCHEMA,
};
