//! Deterministic counter registry and the count-based perf gate.
//!
//! Counters are the *deterministic* half of the metrics split: values that
//! are a pure function of the experiment matrix (cache hits/misses, MII
//! rounds, decompose retries, fast-forward lanes, statements simulated,
//! verify obligations) and therefore identical across runs, machines and
//! thread counts. Wall-clock measurements never enter this registry — they
//! live in the timing sidecar. That split is what lets CI gate on "did this
//! PR change how much work the pipeline does" (`slc stats --check`) without
//! ever comparing wall-clock on shared runners, and keeps BENCH_batch.json
//! byte-identical whether instrumentation is on or off.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;

/// Schema tag written into the counter baseline document.
pub const COUNTERS_SCHEMA: &str = "slc-counters-v1";

/// An ordered map of named `u64` counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRegistry {
    map: BTreeMap<String, u64>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> CounterRegistry {
        CounterRegistry::default()
    }

    /// Add `delta` to counter `name` (created at zero if absent).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.map.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set counter `name` to `value`.
    pub fn set(&mut self, name: &str, value: u64) {
        self.map.insert(name.to_string(), value);
    }

    /// Current value of `name` (0 if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Name-ordered iteration.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Fold another registry into this one (sum per name).
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (k, v) in &other.map {
            *self.map.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Human rendering: one aligned `name  value` row per counter, grouped
    /// by dotted prefix with a blank line between groups.
    pub fn render_text(&self) -> String {
        let width = self.map.keys().map(|k| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        let mut last_group: Option<&str> = None;
        for (k, v) in &self.map {
            let group = k.split('.').next().unwrap_or(k);
            if let Some(prev) = last_group {
                if prev != group {
                    out.push('\n');
                }
            }
            last_group = Some(group);
            let _ = writeln!(out, "{k:<width$}  {v}");
        }
        out
    }

    /// Serialize as the counter-baseline document: schema tag, the counter
    /// map, and the named tolerance table (only entries matching a present
    /// counter are written; everything else is implicitly exact).
    pub fn to_json(&self, tolerances: &[(&str, f64)]) -> String {
        let mut counters = Json::obj();
        for (k, v) in &self.map {
            counters = counters.field(k, *v);
        }
        let mut tols = Json::obj();
        for (name, tol) in tolerances {
            if self.map.contains_key(*name) {
                tols = tols.field(name, *tol);
            }
        }
        Json::obj()
            .field("schema", COUNTERS_SCHEMA)
            .field("counters", counters)
            .field("tolerances", tols)
            .to_pretty()
    }
}

/// A parsed counter-baseline document (`BENCH_counters.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterBaseline {
    /// expected counter values
    pub counters: BTreeMap<String, u64>,
    /// relative tolerance per counter name; absent means exact (0.0)
    pub tolerances: BTreeMap<String, f64>,
}

impl CounterBaseline {
    /// Parse a baseline document produced by [`CounterRegistry::to_json`].
    pub fn parse(text: &str) -> Result<CounterBaseline, String> {
        let doc = Json::parse(text)?;
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != COUNTERS_SCHEMA {
            return Err(format!(
                "expected schema {COUNTERS_SCHEMA:?}, found {schema:?}"
            ));
        }
        let mut counters = BTreeMap::new();
        for (k, v) in doc
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or("missing counters object")?
        {
            let n = v
                .as_i64()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("counter {k:?} is not a non-negative integer"))?;
            counters.insert(k.clone(), n);
        }
        let mut tolerances = BTreeMap::new();
        if let Some(tols) = doc.get("tolerances").and_then(Json::as_obj) {
            for (k, v) in tols {
                let t = v
                    .as_f64()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("tolerance {k:?} is not a non-negative number"))?;
                tolerances.insert(k.clone(), t);
            }
        }
        Ok(CounterBaseline {
            counters,
            tolerances,
        })
    }
}

/// One counter-gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct GateFailure {
    /// counter name
    pub name: String,
    /// baseline value
    pub expected: u64,
    /// observed value; `None` when the counter vanished
    pub actual: Option<u64>,
    /// relative tolerance applied
    pub tolerance: f64,
}

impl std::fmt::Display for GateFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.actual {
            None => write!(
                f,
                "{}: expected {}, counter missing from run",
                self.name, self.expected
            ),
            Some(a) => write!(
                f,
                "{}: expected {} ±{:.0}%, got {}",
                self.name,
                self.expected,
                self.tolerance * 100.0,
                a
            ),
        }
    }
}

/// Compare a run's counters against a baseline. Every baseline counter must
/// be present and within its named relative tolerance (`|a − e| ≤ tol ·
/// max(e, 1)`; tolerance defaults to exact). Counters the run emits that the
/// baseline does not know about are *not* failures — the gate stays quiet
/// while new instrumentation lands, and tightens once the baseline is
/// regenerated.
pub fn check_counters(actual: &CounterRegistry, baseline: &CounterBaseline) -> Vec<GateFailure> {
    let mut failures = Vec::new();
    for (name, &expected) in &baseline.counters {
        let tolerance = baseline.tolerances.get(name).copied().unwrap_or(0.0);
        match actual.map.get(name) {
            None => failures.push(GateFailure {
                name: name.clone(),
                expected,
                actual: None,
                tolerance,
            }),
            Some(&a) => {
                let slack = tolerance * (expected.max(1) as f64);
                if (a as f64 - expected as f64).abs() > slack {
                    failures.push(GateFailure {
                        name: name.clone(),
                        expected,
                        actual: Some(a),
                        tolerance,
                    });
                }
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(pairs: &[(&str, u64)]) -> CounterRegistry {
        let mut r = CounterRegistry::new();
        for (k, v) in pairs {
            r.set(k, *v);
        }
        r
    }

    #[test]
    fn add_merge_and_render() {
        let mut r = reg(&[("cache.parse.hits", 3), ("sim.cycles_total", 100)]);
        r.add("cache.parse.hits", 2);
        let mut other = CounterRegistry::new();
        other.add("sim.cycles_total", 11);
        other.add("slms.mii_rounds", 4);
        r.merge(&other);
        assert_eq!(r.get("cache.parse.hits"), 5);
        assert_eq!(r.get("sim.cycles_total"), 111);
        let text = r.render_text();
        assert!(text.contains("cache.parse.hits"));
        // groups separated by a blank line
        assert_eq!(text.matches("\n\n").count(), 2);
    }

    #[test]
    fn baseline_round_trip() {
        let r = reg(&[("a.x", 7), ("b.y", 0)]);
        let doc = r.to_json(&[("a.x", 0.05), ("not.present", 0.5)]);
        let base = CounterBaseline::parse(&doc).unwrap();
        assert_eq!(base.counters.get("a.x"), Some(&7));
        assert_eq!(base.counters.get("b.y"), Some(&0));
        assert_eq!(base.tolerances.get("a.x"), Some(&0.05));
        assert!(!base.tolerances.contains_key("not.present"));
        assert!(check_counters(&r, &base).is_empty());
    }

    #[test]
    fn gate_tolerances_and_missing_counters() {
        let base = CounterBaseline::parse(
            &reg(&[("exact", 100), ("loose", 100), ("gone", 5)]).to_json(&[("loose", 0.1)]),
        )
        .unwrap();
        // within tolerance / exact match / extra counter → clean
        let ok = reg(&[("exact", 100), ("loose", 109), ("gone", 5), ("new", 1)]);
        assert!(check_counters(&ok, &base).is_empty());
        // drifted exact counter, over-tolerance counter, missing counter
        let bad = reg(&[("exact", 101), ("loose", 111)]);
        let failures = check_counters(&bad, &base);
        assert_eq!(failures.len(), 3);
        let names: Vec<&str> = failures.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["exact", "gone", "loose"]);
        assert!(failures[1].actual.is_none());
        assert!(failures[2].to_string().contains("±10%"));
    }

    #[test]
    fn bad_baselines_rejected() {
        assert!(CounterBaseline::parse("{}").is_err());
        assert!(CounterBaseline::parse(
            r#"{"schema":"slc-counters-v1","counters":{"a":-1},"tolerances":{}}"#
        )
        .is_err());
        assert!(CounterBaseline::parse(
            r#"{"schema":"slc-counters-v1","counters":{},"tolerances":{"a":-0.5}}"#
        )
        .is_err());
    }
}
