//! # proptest (workspace shim)
//!
//! A self-contained, dependency-free stand-in for the parts of the real
//! `proptest` crate this workspace uses. The build environment has no
//! network access and no vendored registry, so the property tests run on
//! this shim instead: same `proptest!` / `Strategy` / `prop_oneof!` API,
//! deterministic xorshift generation (seeded per test name), no shrinking.
//!
//! Determinism is a feature here, not a limitation: the batch-engine
//! determinism tests require `cargo test` to behave identically across
//! runs and machines.

use std::sync::Arc;

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded constructor (`seed` is mixed so 0 is fine).
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15 | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// FNV-1a of a string, used to derive per-test seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type property-test bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the only knob the workspace uses;
/// `max_shrink_iters` exists for API compatibility with call sites written
/// against the real crate and is ignored by this shim's runner).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted, ignored (the shim does not shrink).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// Object-safe generation trait behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// A value generator. Unlike real proptest there is no shrinking; a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy: Clone {
    /// Generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `self` is the leaf; `recurse` builds one level
    /// on top of an inner strategy. `depth` bounds the nesting; the size
    /// hints of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union {
                arms: vec![leaf.clone(), deeper],
            }
            .boxed();
        }
        cur
    }

    /// Type-erase.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed arms (built by `prop_oneof!`).
pub struct Union<T> {
    /// the alternatives
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                let span = (hi - lo).max(1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Clone + 'static {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, u8, u16, u32, u64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// `vec(element, len_range)` as in real proptest.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union { arms: vec![$($crate::Strategy::boxed($arm)),+] }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            )));
        }
    }};
}

#[doc(hidden)]
pub fn __run_case<F: FnOnce() -> TestCaseResult>(
    test_name: &str,
    case: u32,
    args_desc: &str,
    body: F,
) {
    if let Err(e) = body() {
        panic!("proptest {test_name} failed at case {case}:\n{e}\nargs: {args_desc}");
    }
}

/// The property-test harness macro. Supports the subset used here: an
/// optional `#![proptest_config(..)]` header followed by `#[test]` fns with
/// `name in strategy` bindings and a `Result`-free body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::fnv1a(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let desc = format!(concat!($(stringify!($arg), " = {:?} ",)+), $(&$arg),+);
                    $crate::__run_case(stringify!($name), case, &desc, move || {
                        $body
                        Ok(())
                    });
                }
            }
        )*
    };
    (
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[doc = $doc])*
                #[test]
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let u = (0u8..4).generate(&mut rng);
            assert!(u < 4);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        let s = crate::collection::vec(0i32..100, 1..8);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(0i64..10, 1..5), flip in any::<bool>()) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(xs.len(), xs.len());
            if flip { return Ok(()); }
        }
    }
}
