//! Read/write access extraction per multi-instruction.

use slc_ast::visit::walk_expr;
use slc_ast::{AssignOp, Expr, LValue, Stmt};

/// One array element access inside an MI.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayAccess {
    /// Array name.
    pub array: String,
    /// Subscript expressions, one per dimension.
    pub indices: Vec<Expr>,
    /// True for a store, false for a load.
    pub write: bool,
}

/// One scalar access inside an MI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarAccess {
    /// Scalar name.
    pub name: String,
    /// True for a write.
    pub write: bool,
    /// True when the read occurs inside an array subscript (address
    /// arithmetic) — such reads are excluded from the §4 memory-ref count
    /// and from scalar dependence edges against the induction variable.
    pub in_subscript: bool,
}

/// All accesses of one MI.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MiAccesses {
    /// Array element accesses in evaluation order.
    pub arrays: Vec<ArrayAccess>,
    /// Scalar accesses in evaluation order.
    pub scalars: Vec<ScalarAccess>,
    /// True when the MI contains an opaque call.
    pub has_call: bool,
}

impl MiAccesses {
    /// Scalar reads outside subscripts, excluding `exclude` (the induction
    /// variable).
    pub fn scalar_reads<'a>(&'a self, exclude: &'a str) -> impl Iterator<Item = &'a ScalarAccess> {
        self.scalars
            .iter()
            .filter(move |s| !s.write && !s.in_subscript && s.name != exclude)
    }

    /// Scalar writes excluding `exclude`.
    pub fn scalar_writes<'a>(&'a self, exclude: &'a str) -> impl Iterator<Item = &'a ScalarAccess> {
        self.scalars
            .iter()
            .filter(move |s| s.write && s.name != exclude)
    }
}

fn collect_expr(e: &Expr, out: &mut MiAccesses, in_subscript: bool) {
    match e {
        Expr::Var(n) => out.scalars.push(ScalarAccess {
            name: n.clone(),
            write: false,
            in_subscript,
        }),
        Expr::Index(n, idx) => {
            out.arrays.push(ArrayAccess {
                array: n.clone(),
                indices: idx.clone(),
                write: false,
            });
            for i in idx {
                collect_expr(i, out, true);
            }
        }
        Expr::Call(_, args) => {
            out.has_call = true;
            for a in args {
                collect_expr(a, out, in_subscript);
            }
        }
        Expr::Unary(_, a) => collect_expr(a, out, in_subscript),
        Expr::Binary(_, a, b) => {
            collect_expr(a, out, in_subscript);
            collect_expr(b, out, in_subscript);
        }
        Expr::Select(c, t, f) => {
            collect_expr(c, out, in_subscript);
            collect_expr(t, out, in_subscript);
            collect_expr(f, out, in_subscript);
        }
        Expr::Int(_) | Expr::Float(_) => {}
    }
}

fn collect_stmt(s: &Stmt, out: &mut MiAccesses) {
    match s {
        Stmt::Assign { target, op, value } => {
            // Compound assignment reads the target first.
            if *op != AssignOp::Set {
                collect_expr(&target.as_expr(), out, false);
            }
            collect_expr(value, out, false);
            match target {
                LValue::Var(n) => out.scalars.push(ScalarAccess {
                    name: n.clone(),
                    write: true,
                    in_subscript: false,
                }),
                LValue::Index(n, idx) => {
                    out.arrays.push(ArrayAccess {
                        array: n.clone(),
                        indices: idx.clone(),
                        write: true,
                    });
                    for i in idx {
                        collect_expr(i, out, true);
                    }
                }
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_expr(cond, out, false);
            for st in then_branch.iter().chain(else_branch) {
                collect_stmt(st, out);
            }
        }
        Stmt::Call(_, args) => {
            out.has_call = true;
            for a in args {
                collect_expr(a, out, false);
            }
        }
        Stmt::Block(b) | Stmt::Par(b) => {
            for st in b {
                collect_stmt(st, out);
            }
        }
        Stmt::For(f) => {
            collect_expr(&f.init, out, false);
            collect_expr(&f.bound, out, false);
            for st in &f.body {
                collect_stmt(st, out);
            }
        }
        Stmt::While { cond, body } => {
            collect_expr(cond, out, false);
            for st in body {
                collect_stmt(st, out);
            }
        }
        Stmt::Break => {}
    }
}

/// Extract every array and scalar access of a statement (recursively).
pub fn accesses_of_stmt(s: &Stmt) -> MiAccesses {
    let mut out = MiAccesses::default();
    collect_stmt(s, &mut out);
    out
}

/// All scalar variables appearing anywhere in the statement's expressions —
/// convenience for invariance checks.
pub fn all_scalars(s: &Stmt) -> Vec<String> {
    let mut names = Vec::new();
    slc_ast::visit::for_each_expr(s, true, &mut |e| {
        walk_expr(e, &mut |n| {
            if let Expr::Var(v) = n {
                if !names.iter().any(|x| x == v) {
                    names.push(v.clone());
                }
            }
        });
    });
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;

    fn acc(src: &str) -> MiAccesses {
        let s = parse_stmts(src).unwrap();
        accesses_of_stmt(&s[0])
    }

    #[test]
    fn simple_assign() {
        let a = acc("A[i] = B[i - 1] + x;");
        let reads: Vec<_> = a.arrays.iter().filter(|r| !r.write).collect();
        let writes: Vec<_> = a.arrays.iter().filter(|r| r.write).collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].array, "B");
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].array, "A");
        // x read outside subscript; i reads are in_subscript
        assert!(a
            .scalars
            .iter()
            .any(|s| s.name == "x" && !s.write && !s.in_subscript));
        assert!(a.scalars.iter().all(|s| s.name != "i" || s.in_subscript));
    }

    #[test]
    fn compound_assign_reads_target() {
        let a = acc("A[i] += 1;");
        assert_eq!(a.arrays.iter().filter(|r| !r.write).count(), 1);
        assert_eq!(a.arrays.iter().filter(|r| r.write).count(), 1);
        let a = acc("s += t;");
        assert!(a.scalars.iter().any(|x| x.name == "s" && !x.write));
        assert!(a.scalars.iter().any(|x| x.name == "s" && x.write));
        assert!(a.scalars.iter().any(|x| x.name == "t" && !x.write));
    }

    #[test]
    fn predicated_if_accesses() {
        let a = acc("if (c) A[i] = x;");
        assert!(a.scalars.iter().any(|s| s.name == "c" && !s.write));
        assert!(a.arrays.iter().any(|r| r.array == "A" && r.write));
    }

    #[test]
    fn call_marks_barrier() {
        assert!(acc("f(A[i]);").has_call);
        assert!(acc("x = g(y);").has_call);
        assert!(!acc("x = y;").has_call);
    }

    #[test]
    fn nested_subscript_counts_inner_array_read() {
        let a = acc("x = A[B[i]];");
        assert!(a.arrays.iter().any(|r| r.array == "B" && !r.write));
        assert!(a.arrays.iter().any(|r| r.array == "A" && !r.write));
    }

    #[test]
    fn scalar_reads_helper_filters() {
        let a = acc("A[i] = x + i;");
        // `i` appears both as a subscript read and as a plain read; only the
        // plain read of `x` survives the filter (i excluded as induction).
        let names: Vec<_> = a.scalar_reads("i").map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["x".to_string()]);
    }
}
