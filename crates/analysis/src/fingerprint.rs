//! Stable content hashing for cacheable compilation artifacts.
//!
//! The batch experiment engine (`slc-pipeline`) memoizes expensive per-loop
//! artifacts — parsed programs, SLMS outputs, lowered LIR, schedules — in
//! maps keyed by *content* fingerprints, so identical inputs reached
//! through different matrix cells share one computation. The hash must be
//! stable across runs, platforms and thread counts (the report generated
//! from cache statistics is asserted byte-identical), so we use FNV-1a
//! with explicit field feeding rather than `std::hash`, whose `Hasher`
//! values are not guaranteed stable between releases.

use slc_ast::{to_source, Program};

/// Incremental FNV-1a (64-bit) hasher with a stable, documented algorithm.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feed a string, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// Feed a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Feed an `i64`.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Feed a `usize` as `u64`.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Feed an `f64` by bit pattern (the configs hashed here never hold
    /// NaN, so bitwise identity is the right equality).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write(&v.to_bits().to_le_bytes())
    }

    /// Feed a bool.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write(&[v as u8])
    }

    /// Finish the hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of a raw string (e.g. workload source text).
pub fn fingerprint_str(s: &str) -> u64 {
    Fnv64::new().write_str(s).finish()
}

/// Fingerprint of a program's canonical printed form. Two programs with
/// the same source print identically, so this is a sound memoization key
/// for every artifact derived deterministically from the AST (lowered LIR,
/// schedules, simulation results for a fixed machine).
pub fn program_fingerprint(p: &Program) -> u64 {
    fingerprint_str(&to_source(p))
}

/// Combine fingerprints of independent key components (order-sensitive).
pub fn combine(parts: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    for p in parts {
        h.write_u64(*p);
    }
    h.finish()
}

/// Fingerprint of a tagged record: a textual tag (length-prefixed, so tags
/// cannot collide by concatenation) followed by ordered numeric parts.
/// This is the building block of *pass* and *plan* fingerprints: each pass
/// feeds its name as the tag and its parameters as parts, and a plan is
/// `combine` over its passes — so any change to a plan's shape, order or
/// arguments changes the cache key the batch engine memoizes under.
pub fn tagged(tag: &str, parts: &[u64]) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(tag);
    h.write_usize(parts.len());
    for p in parts {
        h.write_u64(*p);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_program;

    #[test]
    fn stable_known_value() {
        // FNV-1a of empty input is the offset basis
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
        // and the hash of "a" is a published constant
        assert_eq!(Fnv64::new().write(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        let a = Fnv64::new().write_str("ab").write_str("c").finish();
        let b = Fnv64::new().write_str("a").write_str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn program_fingerprint_ignores_whitespace() {
        let p1 = parse_program("float A[8]; int i; for (i = 0; i < 4; i++) A[i] = 1.0;").unwrap();
        let p2 =
            parse_program("float A[8];\nint i;\nfor (i = 0; i < 4; i++)  A[i] = 1.0;").unwrap();
        assert_eq!(program_fingerprint(&p1), program_fingerprint(&p2));
    }

    #[test]
    fn different_programs_differ() {
        let p1 = parse_program("float A[8]; int i; for (i = 0; i < 4; i++) A[i] = 1.0;").unwrap();
        let p2 = parse_program("float A[8]; int i; for (i = 0; i < 4; i++) A[i] = 2.0;").unwrap();
        assert_ne!(program_fingerprint(&p1), program_fingerprint(&p2));
    }
}
