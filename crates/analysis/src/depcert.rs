//! Re-checkable dependence certificates.
//!
//! Every verdict the exact dependence engine ([`crate::exactdep`]) emits is
//! backed by a [`DepCertificate`] that a third party can re-validate without
//! trusting the analysis:
//!
//! * [`DepCertificate::Dependent`] carries a concrete witness iteration pair
//!   `(t1, t2)` in normalized iteration space; the checker re-derives the
//!   per-dimension subscript equations from the source accesses and evaluates
//!   the witness against each one.
//! * [`DepCertificate::Independent`] carries the Diophantine system itself (a
//!   [`DepSystem`]); the checker re-derives the equations, confirms the stored
//!   system matches, re-encodes it into CNF, and hands it to the in-workspace
//!   `slc-sat` solver — the proof stands only if the solver answers `Unsat`.
//!
//! The checker never trusts stored clauses: the CNF is rebuilt from the
//! system, and the system is rebuilt from the accesses, mirroring
//! `check_certificate` in `crates/exact`.
//!
//! # Normalized iteration space
//!
//! For a loop `for (v = init; …; v += step)` with a known constant trip count
//! `trips`, iteration `t ∈ [0, trips)` sees `v = init + t·step`. A subscript
//! pair `ca·v + ra` vs `cb·v + rb` (with `ra − rb` constant) touching the same
//! cell at iterations `t1`, `t2` therefore satisfies
//!
//! ```text
//! A·t1 − B·t2 = C,   A = ca·step,  B = cb·step,
//!                    C = −(ra − rb) − init·(ca − cb)
//! ```
//!
//! One such [`DimEq`] per subscript dimension, conjoined over a shared
//! `(t1, t2)` in the box `[0, trips)²`, is the full [`DepSystem`].

use crate::access::ArrayAccess;
use crate::exactdep::LoopRange;
use crate::linform::linearize;
use slc_sat::{Lit, Outcome, Solver};
use std::fmt;

/// One per-dimension Diophantine equation `a·t1 − b·t2 = c` over normalized
/// iteration numbers, tagged with the subscript dimension it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimEq {
    /// Subscript dimension index (0 = outermost subscript).
    pub dim: usize,
    /// Coefficient of `t1` (first access).
    pub a: i64,
    /// Coefficient of `t2` (second access).
    pub b: i64,
    /// Constant right-hand side.
    pub c: i64,
}

/// A conjoined Diophantine system over a shared `(t1, t2)` pair bounded by
/// `0 ≤ t ≤ bound`. Unsatisfiability of any sound subsystem proves the two
/// accesses never touch the same cell, so `dims` may cover a subset of the
/// subscript dimensions (e.g. just the one the GCD test refuted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepSystem {
    /// Inclusive upper bound on both iteration numbers (`trips − 1`).
    pub bound: i64,
    /// Per-dimension equations; must be non-empty to prove anything.
    pub dims: Vec<DimEq>,
}

impl DepSystem {
    /// Concretely evaluate the system at a candidate witness pair.
    pub fn holds_at(&self, t1: i64, t2: i64) -> bool {
        if t1 < 0 || t2 < 0 || t1 > self.bound || t2 > self.bound {
            return false;
        }
        self.dims.iter().all(|d| {
            let lhs = d.a as i128 * t1 as i128 - d.b as i128 * t2 as i128;
            lhs == d.c as i128
        })
    }

    /// Decide the system with `slc-sat`: `Some((t1, t2))` is a model (the
    /// accesses do conflict), `None` means the CNF encoding is unsatisfiable
    /// (provably independent). Fully deterministic.
    pub fn solve(&self) -> Option<(i64, i64)> {
        if self.bound < 0 {
            return None; // zero-trip loop: no iterations, vacuously unsat
        }
        let mut cnf = Cnf::new();
        let m = self.bound as u128;
        let w = bits_of(m);
        let t1 = cnf.word(w);
        let t2 = cnf.word(w);
        cnf.le_const(&t1, m);
        cnf.le_const(&t2, m);
        for d in &self.dims {
            cnf.assert_dim(&t1, &t2, d);
        }
        match cnf.s.solve() {
            Outcome::Sat(model) => {
                let v1 = decode(&t1, &model);
                let v2 = decode(&t2, &model);
                Some((v1, v2))
            }
            Outcome::Unsat(_) => None,
        }
    }
}

/// A typed, re-checkable verdict certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepCertificate {
    /// The accesses provably never touch the same cell within the loop
    /// range: the stored system (re-derived and re-solved by the checker)
    /// is unsatisfiable.
    Independent {
        /// The refuting Diophantine system.
        system: DepSystem,
    },
    /// The accesses conflict: normalized iterations `t1` (first access) and
    /// `t2` (second access) hit the same cell. Checked by concrete
    /// evaluation against the re-derived equations.
    Dependent {
        /// Witness iteration of the first access.
        t1: i64,
        /// Witness iteration of the second access.
        t2: i64,
    },
}

/// Why a certificate failed re-validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepCertError {
    /// A subscript dimension the certificate relies on cannot be re-derived
    /// from the source accesses (non-affine or symbolic residue) — the
    /// analysis never emits certificates for such pairs.
    Underivable {
        /// Offending subscript dimension.
        dim: usize,
    },
    /// The stored system disagrees with the one re-derived from the accesses.
    SystemMismatch {
        /// Human-readable discrepancy.
        detail: String,
    },
    /// The independence proof is refuted: the solver found a model.
    ProofSat {
        /// Model iteration of the first access.
        t1: i64,
        /// Model iteration of the second access.
        t2: i64,
    },
    /// The dependence witness lies outside the loop range.
    WitnessOutOfRange {
        /// Claimed iteration of the first access.
        t1: i64,
        /// Claimed iteration of the second access.
        t2: i64,
        /// Inclusive iteration bound.
        bound: i64,
    },
    /// The dependence witness fails a re-derived dimension equation.
    WitnessInfeasible {
        /// First failing subscript dimension.
        dim: usize,
    },
}

impl fmt::Display for DepCertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepCertError::Underivable { dim } => {
                write!(f, "subscript dimension {dim} is not derivable")
            }
            DepCertError::SystemMismatch { detail } => {
                write!(f, "stored system mismatch: {detail}")
            }
            DepCertError::ProofSat { t1, t2 } => {
                write!(f, "independence proof refuted by model (t1={t1}, t2={t2})")
            }
            DepCertError::WitnessOutOfRange { t1, t2, bound } => {
                write!(f, "witness (t1={t1}, t2={t2}) outside [0, {bound}]")
            }
            DepCertError::WitnessInfeasible { dim } => {
                write!(f, "witness fails dimension {dim} equation")
            }
        }
    }
}

/// Re-derive the per-dimension equation `a·t1 − b·t2 = c` for one subscript
/// pair, or `None` when either subscript is non-affine in `var` or the
/// residue is symbolic (the dimension is then undecidable).
pub fn dim_equation(
    ea: &slc_ast::Expr,
    eb: &slc_ast::Expr,
    var: &str,
    range: &LoopRange,
) -> Option<(i64, i64, i64)> {
    let la = linearize(ea)?;
    let lb = linearize(eb)?;
    let (ca, ra) = la.split_var(var);
    let (cb, rb) = lb.split_var(var);
    let resid = ra.sub(&rb);
    if !resid.is_const() {
        return None;
    }
    let a = (ca as i128).checked_mul(range.step as i128)?;
    let b = (cb as i128).checked_mul(range.step as i128)?;
    let c = (-(resid.konst as i128))
        .checked_sub((range.init as i128).checked_mul(ca as i128 - cb as i128)?)?;
    Some((
        i64::try_from(a).ok()?,
        i64::try_from(b).ok()?,
        i64::try_from(c).ok()?,
    ))
}

/// Re-derive the full system for an access pair: one [`DimEq`] per subscript
/// dimension. `None` when the ranks differ or any dimension is undecidable.
pub fn derive_system(
    a: &ArrayAccess,
    b: &ArrayAccess,
    var: &str,
    range: &LoopRange,
) -> Option<DepSystem> {
    if a.indices.len() != b.indices.len() {
        return None;
    }
    let mut dims = Vec::with_capacity(a.indices.len());
    for (d, (ea, eb)) in a.indices.iter().zip(&b.indices).enumerate() {
        let (qa, qb, qc) = dim_equation(ea, eb, var, range)?;
        dims.push(DimEq {
            dim: d,
            a: qa,
            b: qb,
            c: qc,
        });
    }
    Some(DepSystem {
        bound: range.trips - 1,
        dims,
    })
}

/// Re-validate a certificate against the source accesses it claims to cover.
///
/// Nothing stored in the certificate is trusted beyond the claim itself:
/// equations are re-derived from `a`/`b`, stored systems must match them, and
/// independence proofs are re-solved from a fresh CNF encoding.
pub fn check_dep_certificate(
    a: &ArrayAccess,
    b: &ArrayAccess,
    var: &str,
    range: &LoopRange,
    cert: &DepCertificate,
) -> Result<(), DepCertError> {
    let bound = range.trips - 1;
    match cert {
        DepCertificate::Dependent { t1, t2 } => {
            if *t1 < 0 || *t2 < 0 || *t1 > bound || *t2 > bound {
                return Err(DepCertError::WitnessOutOfRange {
                    t1: *t1,
                    t2: *t2,
                    bound,
                });
            }
            if a.indices.len() != b.indices.len() {
                return Err(DepCertError::Underivable { dim: 0 });
            }
            for (d, (ea, eb)) in a.indices.iter().zip(&b.indices).enumerate() {
                let Some((qa, qb, qc)) = dim_equation(ea, eb, var, range) else {
                    return Err(DepCertError::Underivable { dim: d });
                };
                let lhs = qa as i128 * *t1 as i128 - qb as i128 * *t2 as i128;
                if lhs != qc as i128 {
                    return Err(DepCertError::WitnessInfeasible { dim: d });
                }
            }
            Ok(())
        }
        DepCertificate::Independent { system } => {
            if system.bound != bound {
                return Err(DepCertError::SystemMismatch {
                    detail: format!("bound {} != loop bound {}", system.bound, bound),
                });
            }
            if system.dims.is_empty() {
                return Err(DepCertError::SystemMismatch {
                    detail: "empty system proves nothing".into(),
                });
            }
            let rank = a.indices.len().min(b.indices.len());
            for d in &system.dims {
                if d.dim >= rank {
                    return Err(DepCertError::SystemMismatch {
                        detail: format!("dimension {} out of range", d.dim),
                    });
                }
                let Some((qa, qb, qc)) =
                    dim_equation(&a.indices[d.dim], &b.indices[d.dim], var, range)
                else {
                    return Err(DepCertError::Underivable { dim: d.dim });
                };
                if (qa, qb, qc) != (d.a, d.b, d.c) {
                    return Err(DepCertError::SystemMismatch {
                        detail: format!(
                            "dim {}: stored {}·t1 − {}·t2 = {} vs derived {}·t1 − {}·t2 = {}",
                            d.dim, d.a, d.b, d.c, qa, qb, qc
                        ),
                    });
                }
            }
            match system.solve() {
                Some((t1, t2)) => Err(DepCertError::ProofSat { t1, t2 }),
                None => Ok(()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CNF encoding: Tseitin ripple-carry arithmetic over slc-sat.
// ---------------------------------------------------------------------------

/// Bits needed to represent `v` (at least 1).
fn bits_of(v: u128) -> usize {
    (128 - v.leading_zeros()).max(1) as usize
}

/// Decode an unsigned word from a model; variables the solver never saw
/// default to 0.
fn decode(word: &[Lit], model: &[bool]) -> i64 {
    let mut v: i64 = 0;
    for (j, l) in word.iter().enumerate() {
        if l.var() < model.len() && l.eval(model) {
            v |= 1 << j;
        }
    }
    v
}

/// Little CNF builder: words are LSB-first literal vectors; constant bits are
/// literals of a reserved always-true variable, so constants and variables
/// flow through the same adder circuitry.
struct Cnf {
    s: Solver,
    next: usize,
    tru: Lit,
}

impl Cnf {
    fn new() -> Self {
        let mut s = Solver::new();
        let tru = Lit::pos(0);
        s.add_clause(&[tru]);
        Cnf { s, next: 1, tru }
    }

    fn fals(&self) -> Lit {
        self.tru.negate()
    }

    fn fresh(&mut self) -> Lit {
        let v = self.next;
        self.next += 1;
        Lit::pos(v)
    }

    /// A word of `w` fresh variables.
    fn word(&mut self, w: usize) -> Vec<Lit> {
        (0..w).map(|_| self.fresh()).collect()
    }

    /// Constant word (width = bits of `v`).
    fn const_word(&self, v: u128) -> Vec<Lit> {
        (0..bits_of(v))
            .map(|j| {
                if v >> j & 1 == 1 {
                    self.tru
                } else {
                    self.fals()
                }
            })
            .collect()
    }

    /// Assert `x ≤ m` (unsigned): for every zero bit `j` of `m`, either
    /// `x_j` is 0 or some higher one-bit of `m` has `x_k` = 0.
    fn le_const(&mut self, x: &[Lit], m: u128) {
        for j in 0..x.len() {
            if m >> j & 1 == 1 {
                continue;
            }
            let mut cl = vec![x[j].negate()];
            for (k, xk) in x.iter().enumerate().skip(j + 1) {
                if m >> k & 1 == 1 {
                    cl.push(xk.negate());
                }
            }
            self.s.add_clause(&cl);
        }
    }

    /// Full adder: returns `(sum, carry_out)` bits for `a + b + cin`.
    fn full_add(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let s = self.fresh();
        let co = self.fresh();
        // s = a ⊕ b ⊕ cin
        for mask in 0..8u8 {
            let la = if mask & 1 == 1 { a } else { a.negate() };
            let lb = if mask & 2 == 2 { b } else { b.negate() };
            let lc = if mask & 4 == 4 { cin } else { cin.negate() };
            let parity = (mask.count_ones() & 1) == 1;
            let ls = if parity { s } else { s.negate() };
            // clause forbids (a,b,cin) = mask with wrong s: encode as
            // (¬assignment ∨ correct-s); negating each input literal of the
            // assignment gives the clause.
            self.s
                .add_clause(&[la.negate(), lb.negate(), lc.negate(), ls]);
        }
        // co = majority(a, b, cin)
        self.s.add_clause(&[a.negate(), b.negate(), co]);
        self.s.add_clause(&[a.negate(), cin.negate(), co]);
        self.s.add_clause(&[b.negate(), cin.negate(), co]);
        self.s.add_clause(&[a, b, co.negate()]);
        self.s.add_clause(&[a, cin, co.negate()]);
        self.s.add_clause(&[b, cin, co.negate()]);
        (s, co)
    }

    /// Ripple-carry addition; result is one bit wider than the widest input.
    fn add(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len().max(b.len());
        let f = self.fals();
        let mut out = Vec::with_capacity(w + 1);
        let mut carry = f;
        for j in 0..w {
            let x = a.get(j).copied().unwrap_or(f);
            let y = b.get(j).copied().unwrap_or(f);
            let (s, co) = self.full_add(x, y, carry);
            out.push(s);
            carry = co;
        }
        out.push(carry);
        out
    }

    /// Shift-and-add multiplication by a non-negative constant.
    fn mul_const(&mut self, x: &[Lit], k: u128) -> Vec<Lit> {
        if k == 0 {
            return vec![self.fals()];
        }
        let mut acc: Option<Vec<Lit>> = None;
        for j in 0..128 {
            if k >> j & 1 == 0 {
                continue;
            }
            let mut shifted = vec![self.fals(); j];
            shifted.extend_from_slice(x);
            acc = Some(match acc {
                None => shifted,
                Some(prev) => self.add(&prev, &shifted),
            });
        }
        acc.unwrap()
    }

    /// Assert two unsigned words are equal (shorter one zero-extended).
    fn assert_eq_words(&mut self, a: &[Lit], b: &[Lit]) {
        let w = a.len().max(b.len());
        let f = self.fals();
        for j in 0..w {
            let x = a.get(j).copied().unwrap_or(f);
            let y = b.get(j).copied().unwrap_or(f);
            self.s.add_clause(&[x.negate(), y]);
            self.s.add_clause(&[x, y.negate()]);
        }
    }

    /// Assert one dimension equation `a·t1 − b·t2 = c` by splitting terms by
    /// sign into two non-negative sides `L = R`.
    fn assert_dim(&mut self, t1: &[Lit], t2: &[Lit], d: &DimEq) {
        let mut lhs: Vec<Vec<Lit>> = Vec::new();
        let mut rhs: Vec<Vec<Lit>> = Vec::new();
        match d.a.cmp(&0) {
            std::cmp::Ordering::Greater => lhs.push(self.mul_const(t1, d.a as u128)),
            std::cmp::Ordering::Less => rhs.push(self.mul_const(t1, d.a.unsigned_abs() as u128)),
            std::cmp::Ordering::Equal => {}
        }
        // −b·t2 on the left means +b goes right, −b stays left.
        match d.b.cmp(&0) {
            std::cmp::Ordering::Greater => rhs.push(self.mul_const(t2, d.b as u128)),
            std::cmp::Ordering::Less => lhs.push(self.mul_const(t2, d.b.unsigned_abs() as u128)),
            std::cmp::Ordering::Equal => {}
        }
        if d.c >= 0 {
            rhs.push(self.const_word(d.c as u128));
        } else {
            lhs.push(self.const_word(d.c.unsigned_abs() as u128));
        }
        let l = self.sum_side(lhs);
        let r = self.sum_side(rhs);
        self.assert_eq_words(&l, &r);
    }

    fn sum_side(&mut self, terms: Vec<Vec<Lit>>) -> Vec<Lit> {
        let mut it = terms.into_iter();
        let mut acc = it.next().unwrap_or_else(|| vec![self.fals()]);
        for t in it {
            acc = self.add(&acc, &t);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_raw(bound: i64, dims: Vec<(i64, i64, i64)>) -> Option<(i64, i64)> {
        let dims = dims
            .into_iter()
            .enumerate()
            .map(|(dim, (a, b, c))| DimEq { dim, a, b, c })
            .collect();
        DepSystem { bound, dims }.solve()
    }

    /// Brute reference over the box for small bounds.
    fn brute(bound: i64, dims: &[(i64, i64, i64)]) -> Option<(i64, i64)> {
        for t1 in 0..=bound {
            for t2 in 0..=bound {
                if dims
                    .iter()
                    .all(|&(a, b, c)| a as i128 * t1 as i128 - b as i128 * t2 as i128 == c as i128)
                {
                    return Some((t1, t2));
                }
            }
        }
        None
    }

    #[test]
    fn solver_agrees_with_brute_on_small_systems() {
        let cases: Vec<(i64, Vec<(i64, i64, i64)>)> = vec![
            (7, vec![(1, 1, 3)]),            // i = j + 3
            (7, vec![(2, 2, 1)]),            // parity: unsat
            (7, vec![(4, 2, 1)]),            // gcd 2 ∤ 1: unsat
            (7, vec![(1, 1, 9)]),            // out of range: unsat
            (7, vec![(1, 1, -2)]),           // negative offset
            (7, vec![(-3, -3, 3)]),          // negative coefficients
            (7, vec![(1, 1, 0), (1, 1, 2)]), // conflicting dims: unsat
            (7, vec![(1, 1, 2), (2, 2, 4)]), // consistent dims
            (5, vec![(3, 1, 0)]),            // 3·t1 = t2
            (0, vec![(1, 1, 0)]),            // single iteration
            (6, vec![(0, 2, 4)]),            // t2 fixed at −2: unsat
            (6, vec![(0, -2, 4)]),           // t2 fixed at 2
        ];
        for (bound, dims) in cases {
            let got = solve_raw(bound, dims.clone());
            let want = brute(bound, &dims);
            match (got, want) {
                (None, None) => {}
                (Some((t1, t2)), Some(_)) => {
                    // any model is fine as long as it satisfies the system
                    assert!(
                        dims.iter().all(|&(a, b, c)| a * t1 - b * t2 == c),
                        "bad model ({t1},{t2}) for {dims:?}"
                    );
                    assert!((0..=bound).contains(&t1) && (0..=bound).contains(&t2));
                }
                other => panic!("solver/brute disagree on {dims:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_trip_system_is_unsat() {
        assert_eq!(solve_raw(-1, vec![(1, 1, 0)]), None);
    }

    #[test]
    fn holds_at_checks_bounds_and_equations() {
        let sys = DepSystem {
            bound: 9,
            dims: vec![DimEq {
                dim: 0,
                a: 1,
                b: 1,
                c: 3,
            }],
        };
        assert!(sys.holds_at(5, 2));
        assert!(!sys.holds_at(5, 3));
        assert!(!sys.holds_at(12, 9));
        assert!(!sys.holds_at(-1, -4));
    }
}
