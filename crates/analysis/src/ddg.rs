//! The MI-level data dependence graph (DDG).
//!
//! Nodes are multi-instructions in source order; edges carry a dependence
//! kind and one or more iteration distances ("Edges connecting memory
//! reference nodes are propagated up to the parent MI" — §5). Delays are
//! *not* assigned here: the §3.5 source-level delay rules live in
//! `slc-core`, which consumes this graph.

#![allow(clippy::needless_range_loop)] // index loops mirror the papers' pseudo-code
use crate::access::{accesses_of_stmt, MiAccesses};
use crate::deps::{array_dep_distances, DepDist};
use crate::exactdep::{analyze_pair, DepPairSummary, DepStats, DepVerdict, LoopRange};
use crate::mi::Mi;

/// Kind of a data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// write → read (true/flow dependence)
    Flow,
    /// read → write (anti dependence)
    Anti,
    /// write → write (output dependence)
    Output,
}

/// An iteration distance on a dependence edge. `Const(d)` with `d >= 0`
/// (the source MI executes in iteration `i`, the sink in `i + d`);
/// `Unknown` is the conservative "any distance" answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distance {
    /// Exact iteration distance (≥ 0).
    Const(i64),
    /// Unconstrained distance.
    Unknown,
}

/// One dependence edge between MIs. An edge aggregates every access pair
/// with the same (from, to, kind); `dists` then carries several distances,
/// matching the paper's "each dependency edge has several pairs of
/// *iteration-distance, delay*".
#[derive(Debug, Clone, PartialEq)]
pub struct DepEdge {
    /// Source MI index (executes first).
    pub from: usize,
    /// Sink MI index.
    pub to: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// All observed iteration distances.
    pub dists: Vec<Distance>,
    /// `Some(name)` when the edge is caused by a scalar variable — such
    /// edges (anti/output) are removable by renaming (MVE/scalar expansion);
    /// `None` for array-memory edges, which renaming cannot remove.
    pub scalar: Option<String>,
}

/// The data dependence graph of one loop body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ddg {
    /// Number of MIs.
    pub n: usize,
    /// Dependence edges (deduplicated by (from, to, kind)).
    pub edges: Vec<DepEdge>,
    /// Per-MI access summaries, kept for decomposition decisions.
    pub accesses: Vec<MiAccesses>,
}

impl Ddg {
    /// True if any edge carries an [`Distance::Unknown`] — SLMS cannot prove
    /// a valid II in that case and gives up on the loop.
    pub fn has_unknown(&self) -> bool {
        self.edges
            .iter()
            .any(|e| e.dists.contains(&Distance::Unknown))
    }

    /// All edges out of MI `k`.
    pub fn out_edges(&self, k: usize) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.from == k)
    }

    /// Whether MI `k` has a loop-carried self dependence (distance ≥ 1).
    pub fn has_self_carried(&self, k: usize) -> bool {
        self.edges.iter().any(|e| {
            e.from == k && e.to == k && e.dists.iter().any(|d| !matches!(d, Distance::Const(0)))
        })
    }
}

fn push_edge_tagged(
    edges: &mut Vec<DepEdge>,
    from: usize,
    to: usize,
    kind: DepKind,
    dist: Distance,
    scalar: Option<&str>,
) {
    if let Some(e) = edges
        .iter_mut()
        .find(|e| e.from == from && e.to == to && e.kind == kind && e.scalar.as_deref() == scalar)
    {
        if !e.dists.contains(&dist) {
            e.dists.push(dist);
        }
    } else {
        edges.push(DepEdge {
            from,
            to,
            kind,
            dists: vec![dist],
            scalar: scalar.map(str::to_string),
        });
    }
}

fn push_edge(edges: &mut Vec<DepEdge>, from: usize, to: usize, kind: DepKind, dist: Distance) {
    push_edge_tagged(edges, from, to, kind, dist, None);
}

fn kind_of(src_write: bool, dst_write: bool) -> DepKind {
    match (src_write, dst_write) {
        (true, false) => DepKind::Flow,
        (false, true) => DepKind::Anti,
        (true, true) => DepKind::Output,
        (false, false) => unreachable!("read-read pairs are filtered out"),
    }
}

/// Record a dependence between access `x` in MI `p` and access `y` in MI `q`
/// given the raw distance `d` of the pair test (second access `y` at `i+d`).
fn orient(edges: &mut Vec<DepEdge>, p: usize, q: usize, xw: bool, yw: bool, d: DepDist) {
    match d {
        DepDist::None => {}
        DepDist::Dist(d) => {
            if d > 0 {
                push_edge(edges, p, q, kind_of(xw, yw), Distance::Const(d));
            } else if d < 0 {
                push_edge(edges, q, p, kind_of(yw, xw), Distance::Const(-d));
            } else {
                // same-iteration: source is the textually earlier MI
                match p.cmp(&q) {
                    std::cmp::Ordering::Less => {
                        push_edge(edges, p, q, kind_of(xw, yw), Distance::Const(0))
                    }
                    std::cmp::Ordering::Greater => {
                        push_edge(edges, q, p, kind_of(yw, xw), Distance::Const(0))
                    }
                    // Intra-MI same-iteration pairs are invisible to
                    // scheduling: an MI is atomic.
                    std::cmp::Ordering::Equal => {}
                }
            }
        }
        DepDist::Any => {
            // Conservative: dependence in both directions at unknown distance.
            push_edge(edges, p, q, kind_of(xw, yw), Distance::Unknown);
            if p != q {
                push_edge(edges, q, p, kind_of(yw, xw), Distance::Unknown);
            }
        }
    }
}

/// Build the DDG of a loop body over induction variable `var` with additive
/// step `step` (±k per iteration).
///
/// Array dependences use the affine distance test; the raw distances are in
/// units of the induction variable's *value* and are converted here into
/// *iteration* distances (`d_value / step`; non-divisible distances mean the
/// two accesses never execute in the same loop and are dropped). Scalar
/// dependences use the classic positional rule (def before use in the same
/// iteration → distance 0, otherwise the value crosses to the next
/// iteration → distance 1). Calls are barriers: ordered distance-0 edges
/// against every other MI plus a distance-1 self edge, which prevents any
/// iteration overlap across the call.
pub fn build_ddg(mis: &[Mi], var: &str, step: i64) -> Ddg {
    assert!(step != 0, "loop step must be non-zero");
    let n = mis.len();
    let accesses: Vec<MiAccesses> = mis.iter().map(|m| accesses_of_stmt(&m.stmt)).collect();
    let mut edges = Vec::new();

    // --- array dependences -------------------------------------------------
    for p in 0..n {
        for q in p..n {
            for (ix, x) in accesses[p].arrays.iter().enumerate() {
                for (iy, y) in accesses[q].arrays.iter().enumerate() {
                    if p == q && iy <= ix {
                        continue; // each unordered pair once within an MI
                    }
                    if !x.write && !y.write {
                        continue;
                    }
                    let d = match array_dep_distances(x, y, var) {
                        DepDist::Dist(dv) => {
                            if dv % step == 0 {
                                DepDist::Dist(dv / step)
                            } else {
                                // The aliasing var values are never both
                                // visited by this loop.
                                DepDist::None
                            }
                        }
                        other => other,
                    };
                    orient(&mut edges, p, q, x.write, y.write, d);
                }
            }
        }
    }

    scalar_and_call_edges(&accesses, var, &mut edges);

    Ddg { n, edges, accesses }
}

/// The non-array portion of DDG construction, shared by [`build_ddg`] and
/// [`build_ddg_ranged`]: positional scalar rules plus call barriers.
fn scalar_and_call_edges(accesses: &[MiAccesses], var: &str, edges: &mut Vec<DepEdge>) {
    let n = accesses.len();

    // --- scalar dependences -------------------------------------------------
    // Positional rule over defs/uses of each scalar other than `var`.
    let mut scalar_names: Vec<String> = Vec::new();
    for a in accesses {
        for s in &a.scalars {
            if s.name != var && !scalar_names.contains(&s.name) {
                scalar_names.push(s.name.clone());
            }
        }
    }
    for name in &scalar_names {
        let reads: Vec<usize> = (0..n)
            .filter(|&k| accesses[k].scalar_reads(var).any(|s| s.name == *name))
            .collect();
        let writes: Vec<usize> = (0..n)
            .filter(|&k| accesses[k].scalar_writes(var).any(|s| s.name == *name))
            .collect();
        if writes.is_empty() {
            continue; // loop-invariant scalar
        }
        let tag = Some(name.as_str());
        for &w in &writes {
            // flow: def reaches textually later uses this iteration, earlier
            // uses next iteration.
            for &r in &reads {
                if w < r {
                    push_edge_tagged(edges, w, r, DepKind::Flow, Distance::Const(0), tag);
                } else if w > r {
                    push_edge_tagged(edges, w, r, DepKind::Flow, Distance::Const(1), tag);
                    // anti: the use must happen before the next def
                    push_edge_tagged(edges, r, w, DepKind::Anti, Distance::Const(0), tag);
                } else {
                    // same MI reads and writes (e.g. `s = s + t`):
                    // loop-carried flow onto itself.
                    push_edge_tagged(edges, w, w, DepKind::Flow, Distance::Const(1), tag);
                }
            }
            // anti for textually later reads: read then re-def next iteration
            for &r in &reads {
                if w < r {
                    push_edge_tagged(edges, r, w, DepKind::Anti, Distance::Const(1), tag);
                }
            }
            // output between distinct defs
            for &w2 in &writes {
                if w < w2 {
                    push_edge_tagged(edges, w, w2, DepKind::Output, Distance::Const(0), tag);
                    push_edge_tagged(edges, w2, w, DepKind::Output, Distance::Const(1), tag);
                } else if w == w2 {
                    push_edge_tagged(edges, w, w, DepKind::Output, Distance::Const(1), tag);
                }
            }
        }
    }

    // --- call barriers --------------------------------------------------
    for k in 0..n {
        if accesses[k].has_call {
            for j in 0..n {
                if j < k {
                    push_edge(edges, j, k, DepKind::Flow, Distance::Const(0));
                    push_edge(edges, k, j, DepKind::Flow, Distance::Const(1));
                } else if j > k {
                    push_edge(edges, k, j, DepKind::Flow, Distance::Const(0));
                    push_edge(edges, j, k, DepKind::Flow, Distance::Const(1));
                }
            }
            push_edge(edges, k, k, DepKind::Flow, Distance::Const(1));
        }
    }
}

/// A DDG built by the exact, range-aware engine plus the per-pair verdicts
/// (with certificates) that produced its array edges.
#[derive(Debug, Clone, PartialEq)]
pub struct RangedDdg {
    /// The dependence graph, structurally identical to [`build_ddg`] output
    /// wherever the engines agree.
    pub ddg: Ddg,
    /// One summary per analyzed same-array access pair, in enumeration
    /// order (MI-major, access-ordinal minor).
    pub pairs: Vec<DepPairSummary>,
}

/// Build the DDG with the exact dependence engine ([`crate::exactdep`]),
/// available whenever the loop range is a compile-time constant.
///
/// Array pairs get the layered GCD → Banerjee → exact → SAT decision
/// procedure: proven-independent pairs contribute no edge, decided pairs
/// contribute one edge per proven iteration distance, widened and
/// undecidable pairs fall back to the conservative `Unknown` distance (the
/// same shape [`build_ddg`] emits for them). Scalar dependences and call
/// barriers are identical to [`build_ddg`]. Per-pair verdicts and their
/// certificates are returned alongside; `stats` accumulates the `deps.*`
/// counter family.
pub fn build_ddg_ranged(
    mis: &[Mi],
    var: &str,
    range: &LoopRange,
    stats: &mut DepStats,
) -> RangedDdg {
    let n = mis.len();
    let accesses: Vec<MiAccesses> = mis.iter().map(|m| accesses_of_stmt(&m.stmt)).collect();
    let mut edges = Vec::new();
    let mut pairs = Vec::new();

    for p in 0..n {
        for q in p..n {
            for (ix, x) in accesses[p].arrays.iter().enumerate() {
                for (iy, y) in accesses[q].arrays.iter().enumerate() {
                    if p == q && iy <= ix {
                        continue; // each unordered pair once within an MI
                    }
                    if !x.write && !y.write {
                        continue;
                    }
                    if x.array != y.array {
                        continue;
                    }
                    let ana = analyze_pair(x, y, var, range, stats);
                    match &ana.verdict {
                        DepVerdict::Independent => {}
                        DepVerdict::Distances(ds) => {
                            for &d in ds {
                                orient(&mut edges, p, q, x.write, y.write, DepDist::Dist(d));
                            }
                        }
                        DepVerdict::AnyWithWitness | DepVerdict::Undecidable => {
                            orient(&mut edges, p, q, x.write, y.write, DepDist::Any);
                        }
                    }
                    pairs.push(DepPairSummary {
                        from_mi: p,
                        from_ord: ix,
                        to_mi: q,
                        to_ord: iy,
                        array: x.array.clone(),
                        verdict: ana.verdict,
                        layer: ana.layer,
                        certificate: ana.certificate,
                    });
                }
            }
        }
    }

    scalar_and_call_edges(&accesses, var, &mut edges);

    RangedDdg {
        ddg: Ddg { n, edges, accesses },
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mi::partition_mis;
    use slc_ast::parse_stmts;

    fn ddg(src: &str) -> Ddg {
        let body = parse_stmts(src).unwrap();
        let mis = partition_mis(&body).unwrap();
        build_ddg(&mis, "i", 1)
    }

    fn has_edge(d: &Ddg, from: usize, to: usize, kind: DepKind, dist: i64) -> bool {
        d.edges.iter().any(|e| {
            e.from == from
                && e.to == to
                && e.kind == kind
                && e.dists.contains(&Distance::Const(dist))
        })
    }

    #[test]
    fn intro_dot_product() {
        // t = A[i]*B[i]; s = s + t;
        let d = ddg("t = A[i] * B[i]; s = s + t;");
        // flow t: MI0 → MI1 distance 0
        assert!(has_edge(&d, 0, 1, DepKind::Flow, 0));
        // anti t: MI1 → MI0 distance 1 (next iteration's def)
        assert!(has_edge(&d, 1, 0, DepKind::Anti, 1));
        // self flow on s (accumulator)
        assert!(has_edge(&d, 1, 1, DepKind::Flow, 1));
        assert!(d.has_self_carried(1));
    }

    #[test]
    fn recurrence_self_dep() {
        let d = ddg("A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];");
        assert_eq!(d.n, 1);
        // flow at distances 1 and 2 (writes reaching later reads)
        assert!(has_edge(&d, 0, 0, DepKind::Flow, 1));
        assert!(has_edge(&d, 0, 0, DepKind::Flow, 2));
        // anti at distances 1 and 2 (reads of future cells)
        assert!(has_edge(&d, 0, 0, DepKind::Anti, 1));
        assert!(has_edge(&d, 0, 0, DepKind::Anti, 2));
        assert!(d.has_self_carried(0));
    }

    #[test]
    fn independent_mis_no_edges() {
        let d = ddg("A[i] = B[i] * 2.0; C[i] = D[i] + 1.0;");
        assert!(d.edges.is_empty());
    }

    #[test]
    fn multiple_distances_on_one_edge() {
        // §3.6 example: MI_i: A[i] = B[i-1] + y;  MI_j: B[i] = A[i-2] + A[i-3];
        let d = ddg("A[i] = B[i - 1] + y; B[i] = A[i - 2] + A[i - 3];");
        let e = d
            .edges
            .iter()
            .find(|e| e.from == 0 && e.to == 1 && e.kind == DepKind::Flow)
            .expect("flow edge A: MI0→MI1");
        assert!(e.dists.contains(&Distance::Const(2)));
        assert!(e.dists.contains(&Distance::Const(3)));
        // and flow B: MI1 → MI0 at distance 1
        assert!(has_edge(&d, 1, 0, DepKind::Flow, 1));
    }

    #[test]
    fn call_is_barrier() {
        let d = ddg("x = A[i]; f(x); A[i + 1] = x;");
        assert!(has_edge(&d, 0, 1, DepKind::Flow, 0));
        assert!(has_edge(&d, 1, 0, DepKind::Flow, 1));
        assert!(has_edge(&d, 1, 2, DepKind::Flow, 0));
        assert!(has_edge(&d, 1, 1, DepKind::Flow, 1));
    }

    #[test]
    fn unknown_distance_flagged() {
        let d = ddg("A[B[i]] = x; y = A[i];");
        assert!(d.has_unknown());
    }

    #[test]
    fn anti_distance_orientation() {
        // t = a[i][j+1]; a[i][j] = t;  (inner loop j — the §6 interchange
        // example): read of a[i][j+1] then write of a[i][j] next iteration.
        let body = parse_stmts("t = a[i][j + 1]; a[i][j] = t;").unwrap();
        let mis = partition_mis(&body).unwrap();
        let d = build_ddg(&mis, "j", 1);
        // write in iteration j+1 hits the cell read in iteration j: anti dep
        // read(MI0) → write(MI1) at distance 1.
        assert!(has_edge(&d, 0, 1, DepKind::Anti, 1));
    }

    #[test]
    fn output_self_edge() {
        let d = ddg("s = A[i]; x = s * 2.0;");
        assert!(has_edge(&d, 0, 0, DepKind::Output, 1));
        // flow s: MI0→MI1 dist 0, anti s: MI1→MI0 dist 1
        assert!(has_edge(&d, 0, 1, DepKind::Flow, 0));
        assert!(has_edge(&d, 1, 0, DepKind::Anti, 1));
    }
}
