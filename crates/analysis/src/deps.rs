//! The dependence distance test for array accesses.
//!
//! For two accesses to the same array inside a loop over induction variable
//! `i`, the test determines for which iteration distances `d` the access in
//! iteration `i` (first access) and the access in iteration `i + d` (second
//! access) can touch the same element.
//!
//! With affine subscripts `c·i + r` the test is exact when both accesses use
//! the same coefficient `c` (the overwhelmingly common case in the paper's
//! suites): the single distance is `(r1 - r2) / c` when divisible, otherwise
//! the accesses are independent. Differing coefficients first get a GCD
//! divisibility test (`gcd(c1, c2) ∤ (r2 - r1)` proves independence, e.g.
//! `A[4i]` vs `A[2i+1]`); when the GCD cannot refute, or the subscript is
//! non-affine, the answer degrades to the conservative "any distance", which
//! makes downstream SLMS refuse to pipeline — the same behaviour the paper
//! gets from Tiny when the Omega test cannot prove independence. The
//! range-aware engine in [`crate::exactdep`] supersedes this test whenever
//! the loop bounds are compile-time constants, deciding exactly those
//! mismatched-coefficient pairs with certificates.

use crate::access::ArrayAccess;
use crate::linform::linearize;

/// Errors from loop eligibility checks shared across the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The loop body contains another loop.
    NestedLoop,
    /// The loop body contains `break`.
    BreakInLoop,
    /// The loop body already contains `par` groups.
    AlreadyScheduled(String),
    /// Loop bounds/step not in the supported normalized form.
    UnsupportedLoopForm(String),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::NestedLoop => write!(f, "loop body contains a nested loop"),
            AnalysisError::BreakInLoop => write!(f, "loop body contains break"),
            AnalysisError::AlreadyScheduled(m) => write!(f, "already scheduled: {m}"),
            AnalysisError::UnsupportedLoopForm(m) => write!(f, "unsupported loop form: {m}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Result of the per-pair distance test. Distances are oriented from the
/// *first* access (iteration `i`) to the *second* (iteration `i + d`); a
/// negative value means the second access's iteration precedes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepDist {
    /// Provably never the same element.
    None,
    /// Exactly one possible distance.
    Dist(i64),
    /// Dependence possible at unknown (possibly many) distances.
    Any,
}

/// Per-dimension verdict, folded across dimensions by [`array_dep_distances`].
enum DimVerdict {
    /// This dimension never matches.
    Never,
    /// Matches exactly when `d == k`.
    Exactly(i64),
    /// Matches for every `d` (dimension does not constrain the distance).
    Always,
    /// Unknown — cannot constrain.
    Unknown,
}

fn dim_verdict(a: &slc_ast::Expr, b: &slc_ast::Expr, var: &str) -> DimVerdict {
    let (la, lb) = match (linearize(a), linearize(b)) {
        (Some(x), Some(y)) => (x, y),
        _ => return DimVerdict::Unknown,
    };
    let (ca, ra) = la.split_var(var);
    let (cb, rb) = lb.split_var(var);
    // Solve ca·i + ra == cb·(i + d) + rb  for d, existentially over the
    // remaining symbols (treated as arbitrary loop invariants).
    if ca == cb {
        if ca == 0 {
            // No induction variable at all: equal iff the rests match.
            let diff = ra.sub(&rb);
            return if diff.is_const() {
                if diff.konst == 0 {
                    DimVerdict::Always
                } else {
                    DimVerdict::Never
                }
            } else {
                // Symbolic rests might coincide for some symbol values.
                DimVerdict::Unknown
            };
        }
        // ca·i + ra = ca·i + ca·d + rb  →  ca·d = ra - rb.
        let diff = ra.sub(&rb);
        if diff.is_const() {
            if diff.konst % ca == 0 {
                DimVerdict::Exactly(diff.konst / ca)
            } else {
                DimVerdict::Never
            }
        } else {
            DimVerdict::Unknown
        }
    } else {
        // Different coefficients: solutions to ca·x = cb·y + (rb - ra) exist
        // only when gcd(ca, cb) divides the constant residue — otherwise the
        // accesses are provably disjoint. When solutions do exist the
        // distance varies with `i`, so the answer stays conservative.
        let diff = ra.sub(&rb);
        if diff.is_const() {
            let g = gcd(ca, cb);
            if g != 0 && diff.konst % g != 0 {
                return DimVerdict::Never;
            }
        }
        DimVerdict::Unknown
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Compute the possible iteration distances between two accesses to the same
/// array. Returns [`DepDist::None`] when the arrays differ.
pub fn array_dep_distances(a: &ArrayAccess, b: &ArrayAccess, var: &str) -> DepDist {
    if a.array != b.array {
        return DepDist::None;
    }
    if a.indices.len() != b.indices.len() {
        // Malformed program (dimension mismatch); be conservative.
        return DepDist::Any;
    }
    let mut exact: Option<i64> = None;
    let mut any_unknown = false;
    for (ia, ib) in a.indices.iter().zip(&b.indices) {
        match dim_verdict(ia, ib, var) {
            DimVerdict::Never => return DepDist::None,
            DimVerdict::Exactly(d) => match exact {
                None => exact = Some(d),
                Some(prev) if prev != d => return DepDist::None,
                Some(_) => {}
            },
            DimVerdict::Always => {}
            DimVerdict::Unknown => any_unknown = true,
        }
    }
    match (exact, any_unknown) {
        // An exact dimension pins the distance even if other dims are fuzzy:
        // the fuzzy dims may still fail to match, but `d` is the only
        // candidate — conservatively report it.
        (Some(d), _) => DepDist::Dist(d),
        (None, true) => DepDist::Any,
        (None, false) => DepDist::Any, // all dims Always: same element every iteration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_expr;

    fn aa(array: &str, idx: &[&str], write: bool) -> ArrayAccess {
        ArrayAccess {
            array: array.into(),
            indices: idx.iter().map(|s| parse_expr(s).unwrap()).collect(),
            write,
        }
    }

    #[test]
    fn classic_flow_distance() {
        // A[i] written, A[i-1] read → the read in iteration i+1 touches the
        // cell written in iteration i: distance 1.
        let w = aa("A", &["i"], true);
        let r = aa("A", &["i - 1"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Dist(1));
        // Opposite orientation gives -1.
        assert_eq!(array_dep_distances(&r, &w, "i"), DepDist::Dist(-1));
    }

    #[test]
    fn same_subscript_distance_zero() {
        let w = aa("A", &["i"], true);
        let r = aa("A", &["i"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Dist(0));
    }

    #[test]
    fn different_arrays_independent() {
        let w = aa("A", &["i"], true);
        let r = aa("B", &["i"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::None);
    }

    #[test]
    fn gcd_style_independence() {
        // A[2i] vs A[2i+1]: parity differs, never aliases.
        let w = aa("A", &["2 * i"], true);
        let r = aa("A", &["2 * i + 1"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::None);
        // A[2i] vs A[2i+4]: distance 2.
        let r = aa("A", &["2 * i + 4"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Dist(-2));
    }

    #[test]
    fn symbolic_offsets() {
        // A[i + 101] vs A[i]: distance -101/1 … oriented: second access at
        // i+d hits first when d = 101.
        let w = aa("U1", &["i + 101"], true);
        let r = aa("U1", &["i"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Dist(101));
        // Same symbolic rest cancels: A[i + n] vs A[i + n - 1].
        let w = aa("A", &["i + n"], true);
        let r = aa("A", &["i + n - 1"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Dist(1));
        // Unrelated symbols: unknown.
        let r = aa("A", &["i + m"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Any);
    }

    #[test]
    fn two_dimensional() {
        // X[k][i] vs X[k][j] — loop over k: first dims pin d = 0; second dims
        // are symbolic (i vs j unknown) but the exact dim wins.
        let w = aa("X", &["k", "i"], true);
        let r = aa("X", &["k", "j"], false);
        assert_eq!(array_dep_distances(&w, &r, "k"), DepDist::Dist(0));
        // a[i][j] vs a[i][j+1] — loop over j: distance -1 (second earlier).
        let w = aa("a", &["i", "j + 1"], true);
        let r = aa("a", &["i", "j"], false);
        assert_eq!(array_dep_distances(&w, &r, "j"), DepDist::Dist(1));
    }

    #[test]
    fn dimension_conflict_is_independent() {
        // A[i][i] vs A[i+1][i+2]: dims demand d=1 and d=2 → impossible.
        let w = aa("A", &["i", "i"], true);
        let r = aa("A", &["i + 1", "i + 2"], false);
        assert_eq!(array_dep_distances(&r, &w, "i"), DepDist::None);
    }

    #[test]
    fn constant_subscripts() {
        let w = aa("A", &["0"], true);
        let r = aa("A", &["0"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Any);
        let r = aa("A", &["1"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::None);
    }

    #[test]
    fn nonaffine_is_any() {
        let w = aa("A", &["i * i"], true);
        let r = aa("A", &["i"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Any);
        let r2 = aa("A", &["B[i]"], false);
        assert_eq!(array_dep_distances(&w, &r2, "i"), DepDist::Any);
    }

    #[test]
    fn coefficient_mismatch_is_any() {
        let w = aa("A", &["2 * i"], true);
        let r = aa("A", &["i"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Any);
    }

    #[test]
    fn coefficient_mismatch_gcd_disjoint() {
        // A[4i] vs A[2i+1]: gcd(4, 2) = 2 does not divide 1 — even and odd
        // cells never collide despite the differing strides.
        let w = aa("A", &["4 * i"], true);
        let r = aa("A", &["2 * i + 1"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::None);
        // A[2i] vs A[4i+2] alias (e.g. i=3 vs i=1): gcd cannot refute.
        let w = aa("A", &["2 * i"], true);
        let r = aa("A", &["4 * i + 2"], false);
        assert_eq!(array_dep_distances(&w, &r, "i"), DepDist::Any);
    }
}
