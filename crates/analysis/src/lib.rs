//! # slc-analysis — array and scalar dependence analysis for SLMS
//!
//! The paper runs SLMS inside Tiny "enhanced by the Omega test": the only
//! facts SLMS consumes are, for every pair of references in a loop body,
//! whether they may touch the same memory and at which **iteration
//! distance**. This crate rebuilds that substrate:
//!
//! * [`linform`] — normalization of subscript expressions into linear forms
//!   `c0 + Σ ci·vi` over scalar variables;
//! * [`access`] — extraction of array/scalar read and write sets per
//!   multi-instruction (MI);
//! * [`mi`] — partitioning of a loop body into MIs (assignments, predicated
//!   ifs, calls) exactly as §3 of the paper prescribes;
//! * [`deps`] — the dependence test for affine subscripts (exact for equal
//!   coefficients — the common case in the benchmark suites — conservative
//!   otherwise), producing flow/anti/output edges labeled with one *or more*
//!   iteration-distance values per edge (§3.6 notes an edge may carry
//!   several `<distance, delay>` pairs);
//! * [`exactdep`] — the layered exact dependence engine (GCD → Banerjee →
//!   closed-form → SAT) used instead of [`deps`] whenever the loop range is
//!   a compile-time constant; every verdict carries a re-checkable
//!   certificate from [`depcert`];
//! * [`depcert`] — typed dependence certificates (witness iteration pairs
//!   and UNSAT-style independence proofs over the in-workspace `slc-sat`
//!   solver) plus their re-validation entry point;
//! * [`ddg`] — the MI-level data dependence graph consumed by the MII
//!   computation in `slc-core`;
//! * [`memref`] — the §4 memory-ref ratio `LS / (LS + AO)` used by the
//!   bad-case filter;
//! * [`brute`] — a brute-force dependence oracle (enumerates iterations of
//!   small constant-bound loops) used by property tests to show the
//!   analytical test never *misses* a dependence.

pub mod access;
pub mod brute;
pub mod ddg;
pub mod depcert;
pub mod deps;
pub mod exactdep;
pub mod fingerprint;
pub mod linform;
pub mod memref;
pub mod mi;

pub use access::{accesses_of_stmt, ArrayAccess, MiAccesses, ScalarAccess};
pub use brute::{brute_force_deps, ddg_covers, GroundDep};
pub use ddg::{build_ddg, build_ddg_ranged, Ddg, DepEdge, DepKind, Distance, RangedDdg};
pub use depcert::{
    check_dep_certificate, derive_system, DepCertError, DepCertificate, DepSystem, DimEq,
};
pub use deps::{array_dep_distances, AnalysisError, DepDist};
pub use exactdep::{
    analyze_pair, DepLayer, DepPairSummary, DepStats, DepVerdict, LoopRange, PairAnalysis, DIST_CAP,
};
pub use fingerprint::{fingerprint_str, program_fingerprint, Fnv64};
pub use linform::LinForm;
pub use memref::{memref_ratio, op_counts, OpCounts};
pub use mi::{partition_mis, Mi, MiKind};
