//! Exact, certificate-producing dependence analysis.
//!
//! The classic test in [`crate::deps`] is exact only when both subscripts
//! share the induction-variable coefficient; any mismatch collapses to
//! `DepDist::Any` and the loop is refused or over-constrained. This module
//! replaces that cliff with a layered decision procedure over normalized
//! iteration space, run when the loop range (`init`, `step`, `trips`) is
//! known at compile time:
//!
//! 1. **GCD test** — per dimension, `gcd(A, B) ∤ C` refutes the equation
//!    `A·t1 − B·t2 = C` outright.
//! 2. **Banerjee bounds** — the extreme values of `A·t1 − B·t2` over the
//!    iteration box `[0, trips)²`; `C` outside the interval refutes.
//! 3. **Exact integer test** — the extended-gcd closed form of the
//!    per-dimension Diophantine equation, intersected with the box, yields
//!    the exact per-dimension distance set (or a witness when the set is
//!    wider than [`DIST_CAP`]).
//! 4. **SAT confirmation** — for multi-dimensional subscripts the per-dim
//!    sets only over-approximate the joint solutions, so the conjoined
//!    system is decided by the in-workspace `slc-sat` solver over a shared
//!    `(t1, t2)` encoding; `Unsat` upgrades the pair to independent.
//!
//! Every decided verdict carries a [`DepCertificate`] (witness pair or
//! re-solvable UNSAT system, see [`crate::depcert`]) which the analysis
//! self-checks before returning; [`DepStats`] counts which layer decided
//! each pair for the `deps.*` counter family.
//!
//! Distances reported here are **iteration distances** (`t2 − t1` in
//! normalized iteration space), ready for the DDG — unlike
//! [`crate::deps::array_dep_distances`], which reports distances in units of
//! the induction variable's value.

use crate::access::ArrayAccess;
use crate::depcert::{check_dep_certificate, dim_equation, DepCertificate, DepSystem, DimEq};
use slc_ast::ForLoop;
use std::collections::{BTreeMap, BTreeSet};

/// Exact distance sets wider than this many entries are widened to
/// [`DepVerdict::AnyWithWitness`] instead of being enumerated.
pub const DIST_CAP: usize = 8;

/// A compile-time-known normalized loop range: iteration `t ∈ [0, trips)`
/// sees the induction variable at `init + t·step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopRange {
    /// Constant initial value of the induction variable.
    pub init: i64,
    /// Constant additive step (non-zero).
    pub step: i64,
    /// Constant trip count (≥ 1).
    pub trips: i64,
}

impl LoopRange {
    /// Extract the range from a loop header when `init` and the trip count
    /// are compile-time constants (and the loop runs at least once).
    pub fn of_loop(f: &ForLoop) -> Option<LoopRange> {
        let trips = f.trip_count()?;
        let init = f.init.const_int()?;
        if trips < 1 || f.step == 0 {
            return None;
        }
        Some(LoopRange {
            init,
            step: f.step,
            trips,
        })
    }
}

/// Which layer of the procedure decided a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepLayer {
    /// Refuted by the per-dimension GCD divisibility test.
    Gcd,
    /// Refuted by the Banerjee extreme-value bounds.
    Banerjee,
    /// Decided by the extended-gcd closed form over the iteration box.
    Exact,
    /// Decided by the `slc-sat` encoding of the conjoined system.
    Sat,
}

impl DepLayer {
    /// Stable lower-case name for JSON output.
    pub fn name(self) -> &'static str {
        match self {
            DepLayer::Gcd => "gcd",
            DepLayer::Banerjee => "banerjee",
            DepLayer::Exact => "exact",
            DepLayer::Sat => "sat",
        }
    }
}

/// The verdict for one same-array access pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepVerdict {
    /// Provably no iteration pair touches the same cell within the range.
    Independent,
    /// Dependent; the sorted set of possible iteration distances `t2 − t1`.
    /// For single-dimension subscripts the set is exact; for
    /// multi-dimensional subscripts it is a sound over-approximation
    /// confirmed non-empty by the SAT layer.
    Distances(Vec<i64>),
    /// Dependent with a distance set wider than [`DIST_CAP`]; treated as
    /// `Any` by the scheduler but still certified by a concrete witness.
    AnyWithWitness,
    /// Outside the engine's theory (non-affine subscript or symbolic
    /// residue); no certificate is emitted.
    Undecidable,
}

impl DepVerdict {
    /// Stable lower-case name for JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            DepVerdict::Independent => "independent",
            DepVerdict::Distances(_) => "distances",
            DepVerdict::AnyWithWitness => "any-with-witness",
            DepVerdict::Undecidable => "undecidable",
        }
    }
}

/// Counters for the `deps.*` registry family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepStats {
    /// Pairs given a definite verdict (everything but `Undecidable`).
    pub pairs_decided: u64,
    /// Pairs refuted by the GCD layer.
    pub gcd_hits: u64,
    /// Pairs refuted by the Banerjee layer.
    pub banerjee_hits: u64,
    /// Pairs whose verdict needed the SAT layer.
    pub sat_decided: u64,
    /// Dependent pairs widened past [`DIST_CAP`].
    pub widened_to_any: u64,
    /// Certificates self-checked clean before being returned.
    pub certs_checked: u64,
}

impl DepStats {
    /// Accumulate another stats block into this one.
    pub fn absorb(&mut self, o: &DepStats) {
        self.pairs_decided += o.pairs_decided;
        self.gcd_hits += o.gcd_hits;
        self.banerjee_hits += o.banerjee_hits;
        self.sat_decided += o.sat_decided;
        self.widened_to_any += o.widened_to_any;
        self.certs_checked += o.certs_checked;
    }
}

/// Analysis result for one access pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairAnalysis {
    /// The verdict.
    pub verdict: DepVerdict,
    /// Which layer decided it (`None` for `Undecidable`).
    pub layer: Option<DepLayer>,
    /// The re-checkable certificate (`None` for `Undecidable`).
    pub certificate: Option<DepCertificate>,
}

impl PairAnalysis {
    fn undecidable() -> PairAnalysis {
        PairAnalysis {
            verdict: DepVerdict::Undecidable,
            layer: None,
            certificate: None,
        }
    }
}

/// A decided pair in context: which MI/access ordinals it covers, for the
/// report, `slc deps`, and certificate re-validation in `crates/verify`.
#[derive(Debug, Clone, PartialEq)]
pub struct DepPairSummary {
    /// MI index of the first access (textual order).
    pub from_mi: usize,
    /// Ordinal of the first access within its MI's array-access list.
    pub from_ord: usize,
    /// MI index of the second access.
    pub to_mi: usize,
    /// Ordinal of the second access within its MI's array-access list.
    pub to_ord: usize,
    /// Array both accesses touch.
    pub array: String,
    /// The verdict.
    pub verdict: DepVerdict,
    /// Deciding layer (`None` for `Undecidable`).
    pub layer: Option<DepLayer>,
    /// Re-checkable certificate (`None` for `Undecidable`).
    pub certificate: Option<DepCertificate>,
}

// ---------------------------------------------------------------------------
// Per-dimension closed-form solving.
// ---------------------------------------------------------------------------

/// Exact solution of one dimension equation over the box `[0, m]²`.
enum DimSol {
    /// No solution; tagged with the refuting layer.
    Never(DepLayer),
    /// `0 = 0`: every iteration pair satisfies this dimension.
    All,
    /// Exact distance set, each distance with a witness `(t1, t2)`.
    Dists(BTreeMap<i64, (i64, i64)>),
    /// Non-empty but wider than [`DIST_CAP`]; holds one witness.
    Wide((i64, i64)),
}

fn floor_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) == (b < 0) {
        q + 1
    } else {
        q
    }
}

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Extended gcd: returns `(g, x, y)` with `a·x + b·y = g = gcd(|a|, |b|)`.
fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        if a >= 0 {
            (a, 1, 0)
        } else {
            (-a, -1, 0)
        }
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Range of `k` with `0 ≤ base + slope·k ≤ m` (`slope ≠ 0`), or `None` when
/// empty.
fn k_range(base: i128, slope: i128, m: i128) -> Option<(i128, i128)> {
    let (lo, hi) = if slope > 0 {
        (ceil_div(-base, slope), floor_div(m - base, slope))
    } else {
        (ceil_div(m - base, slope), floor_div(-base, slope))
    };
    (lo <= hi).then_some((lo, hi))
}

/// `δ` spans an inclusive interval; enumerate when small, widen otherwise.
/// `wit(δ)` produces a witness pair for a given distance.
fn span_dists(dlo: i128, dhi: i128, wit: impl Fn(i128) -> (i128, i128)) -> DimSol {
    if dhi - dlo < DIST_CAP as i128 {
        let mut map = BTreeMap::new();
        for d in dlo..=dhi {
            let (t1, t2) = wit(d);
            map.insert(d as i64, (t1 as i64, t2 as i64));
        }
        DimSol::Dists(map)
    } else {
        let (t1, t2) = wit(dlo);
        DimSol::Wide((t1 as i64, t2 as i64))
    }
}

/// Solve `A·t1 − B·t2 = C` over `0 ≤ t1, t2 ≤ m` exactly.
fn solve_dim(qa: i64, qb: i64, qc: i64, m: i64) -> DimSol {
    let (a, b, c, m) = (qa as i128, qb as i128, qc as i128, m as i128);
    if a == 0 && b == 0 {
        return if c == 0 {
            DimSol::All
        } else {
            DimSol::Never(DepLayer::Gcd)
        };
    }
    // Layer 1: GCD divisibility.
    let g = gcd128(a, b);
    if c % g != 0 {
        return DimSol::Never(DepLayer::Gcd);
    }
    // Layer 2: Banerjee extreme-value bounds over the box.
    let lo = (a * m).min(0) - (b * m).max(0);
    let hi = (a * m).max(0) - (b * m).min(0);
    if c < lo || c > hi {
        return DimSol::Never(DepLayer::Banerjee);
    }
    // Layer 3: exact closed form.
    if b == 0 {
        // t1 is pinned, t2 is free.
        let t1 = c / a;
        if c % a != 0 || t1 < 0 || t1 > m {
            return DimSol::Never(DepLayer::Exact);
        }
        return span_dists(-t1, m - t1, |d| (t1, t1 + d));
    }
    if a == 0 {
        // t2 is pinned, t1 is free.
        let t2 = c / -b;
        if c % b != 0 || t2 < 0 || t2 > m {
            return DimSol::Never(DepLayer::Exact);
        }
        return span_dists(t2 - m, t2, |d| (t2 - d, t2));
    }
    // General case: a·t1 + b'·t2 = c with b' = −b.
    let bp = -b;
    let (g2, x, y) = egcd(a, bp);
    let mult = c / g2;
    let x0 = x * mult;
    let y0 = y * mult;
    let s1 = bp / g2; // t1 = x0 + s1·k
    let s2 = -a / g2; // t2 = y0 + s2·k
    let Some((l1, h1)) = k_range(x0, s1, m) else {
        return DimSol::Never(DepLayer::Exact);
    };
    let Some((l2, h2)) = k_range(y0, s2, m) else {
        return DimSol::Never(DepLayer::Exact);
    };
    let (klo, khi) = (l1.max(l2), h1.min(h2));
    if klo > khi {
        return DimSol::Never(DepLayer::Exact);
    }
    let dslope = s2 - s1;
    if dslope == 0 {
        // A == B: single distance regardless of k.
        let d = y0 - x0;
        let mut map = BTreeMap::new();
        map.insert(d as i64, ((x0 + s1 * klo) as i64, (y0 + s2 * klo) as i64));
        return DimSol::Dists(map);
    }
    if khi - klo < DIST_CAP as i128 {
        let mut map = BTreeMap::new();
        for k in klo..=khi {
            let t1 = x0 + s1 * k;
            let t2 = y0 + s2 * k;
            map.insert((t2 - t1) as i64, (t1 as i64, t2 as i64));
        }
        return DimSol::Dists(map);
    }
    DimSol::Wide(((x0 + s1 * klo) as i64, (y0 + s2 * klo) as i64))
}

// ---------------------------------------------------------------------------
// Pair-level fold.
// ---------------------------------------------------------------------------

/// Decide one same-array access pair under a known loop range.
///
/// Soundness: a `Distances` verdict always contains every iteration distance
/// realized by the pair within the range; `Independent` is backed by an
/// UNSAT certificate over a system whose unsatisfiability implies no shared
/// cell; `AnyWithWitness` never constrains the scheduler beyond the old
/// `Any`. The emitted certificate is self-checked before returning — a
/// failed self-check (which would indicate an engine bug) conservatively
/// downgrades the pair to `Undecidable`.
pub fn analyze_pair(
    a: &ArrayAccess,
    b: &ArrayAccess,
    var: &str,
    range: &LoopRange,
    stats: &mut DepStats,
) -> PairAnalysis {
    if a.indices.len() != b.indices.len() || a.indices.is_empty() {
        return PairAnalysis::undecidable();
    }
    let m = range.trips - 1;
    let mut eqs: Vec<Option<(i64, i64, i64)>> = Vec::new();
    let mut sols: Vec<Option<DimSol>> = Vec::new();
    for (ea, eb) in a.indices.iter().zip(&b.indices) {
        match dim_equation(ea, eb, var, range) {
            None => {
                eqs.push(None);
                sols.push(None);
            }
            Some((qa, qb, qc)) => {
                eqs.push(Some((qa, qb, qc)));
                sols.push(Some(solve_dim(qa, qb, qc, m)));
            }
        }
    }
    // A single refuted dimension proves independence even when other
    // dimensions are undecidable: the certificate system is just that
    // dimension's equation.
    for (d, sol) in sols.iter().enumerate() {
        if let Some(DimSol::Never(layer)) = sol {
            let (qa, qb, qc) = eqs[d].expect("refuted dim has an equation");
            let system = DepSystem {
                bound: m,
                dims: vec![DimEq {
                    dim: d,
                    a: qa,
                    b: qb,
                    c: qc,
                }],
            };
            match *layer {
                DepLayer::Gcd => stats.gcd_hits += 1,
                DepLayer::Banerjee => stats.banerjee_hits += 1,
                _ => {}
            }
            return finish(
                a,
                b,
                var,
                range,
                stats,
                PairAnalysis {
                    verdict: DepVerdict::Independent,
                    layer: Some(*layer),
                    certificate: Some(DepCertificate::Independent { system }),
                },
            );
        }
    }
    if sols.iter().any(|s| s.is_none()) {
        return PairAnalysis::undecidable();
    }
    let sols: Vec<DimSol> = sols.into_iter().map(|s| s.unwrap()).collect();
    let full_system = DepSystem {
        bound: m,
        dims: eqs
            .iter()
            .enumerate()
            .map(|(d, eq)| {
                let (qa, qb, qc) = eq.expect("all dims derivable here");
                DimEq {
                    dim: d,
                    a: qa,
                    b: qb,
                    c: qc,
                }
            })
            .collect(),
    };
    // Every dimension unconstrained: the accesses collide everywhere.
    if sols.iter().all(|s| matches!(s, DimSol::All)) {
        let ana = if 2 * m < DIST_CAP as i64 {
            PairAnalysis {
                verdict: DepVerdict::Distances((-m..=m).collect()),
                layer: Some(DepLayer::Exact),
                certificate: Some(DepCertificate::Dependent { t1: 0, t2: 0 }),
            }
        } else {
            stats.widened_to_any += 1;
            PairAnalysis {
                verdict: DepVerdict::AnyWithWitness,
                layer: Some(DepLayer::Exact),
                certificate: Some(DepCertificate::Dependent { t1: 0, t2: 0 }),
            }
        };
        return finish(a, b, var, range, stats, ana);
    }
    // Intersect the exact per-dimension distance sets (All/Wide dims impose
    // no distance constraint). Any realized pair's distance lies in every
    // exact set, so an empty intersection proves independence.
    let mut inter: Option<BTreeSet<i64>> = None;
    let mut any_wide = false;
    for sol in &sols {
        match sol {
            DimSol::All => {}
            DimSol::Wide(_) => any_wide = true,
            DimSol::Dists(map) => {
                let keys: BTreeSet<i64> = map.keys().copied().collect();
                inter = Some(match inter {
                    None => keys,
                    Some(prev) => prev.intersection(&keys).copied().collect(),
                });
            }
            DimSol::Never(_) => unreachable!("handled above"),
        }
    }
    if let Some(set) = &inter {
        if set.is_empty() {
            return finish(
                a,
                b,
                var,
                range,
                stats,
                PairAnalysis {
                    verdict: DepVerdict::Independent,
                    layer: Some(DepLayer::Exact),
                    certificate: Some(DepCertificate::Independent {
                        system: full_system,
                    }),
                },
            );
        }
    }
    // Single-dimension subscripts need no joint confirmation: the per-dim
    // solution is the whole story.
    if sols.len() == 1 {
        let ana = match &sols[0] {
            DimSol::Dists(map) => {
                let (&_, &(t1, t2)) = map.iter().next().expect("non-empty");
                PairAnalysis {
                    verdict: DepVerdict::Distances(map.keys().copied().collect()),
                    layer: Some(DepLayer::Exact),
                    certificate: Some(DepCertificate::Dependent { t1, t2 }),
                }
            }
            DimSol::Wide((t1, t2)) => {
                stats.widened_to_any += 1;
                PairAnalysis {
                    verdict: DepVerdict::AnyWithWitness,
                    layer: Some(DepLayer::Exact),
                    certificate: Some(DepCertificate::Dependent { t1: *t1, t2: *t2 }),
                }
            }
            _ => unreachable!("All and Never handled above"),
        };
        return finish(a, b, var, range, stats, ana);
    }
    // Multi-dimensional: a shared distance does not imply a shared (t1, t2),
    // so decide the conjoined system with the SAT layer.
    stats.sat_decided += 1;
    let ana = match full_system.solve() {
        None => PairAnalysis {
            verdict: DepVerdict::Independent,
            layer: Some(DepLayer::Sat),
            certificate: Some(DepCertificate::Independent {
                system: full_system,
            }),
        },
        Some((t1, t2)) => {
            let verdict = match inter {
                Some(set) => DepVerdict::Distances(set.into_iter().collect()),
                None => {
                    debug_assert!(any_wide);
                    stats.widened_to_any += 1;
                    DepVerdict::AnyWithWitness
                }
            };
            PairAnalysis {
                verdict,
                layer: Some(DepLayer::Sat),
                certificate: Some(DepCertificate::Dependent { t1, t2 }),
            }
        }
    };
    finish(a, b, var, range, stats, ana)
}

/// Self-check the certificate and finalize counters. A failing self-check
/// (an engine bug) downgrades to `Undecidable` rather than shipping an
/// invalid proof.
fn finish(
    a: &ArrayAccess,
    b: &ArrayAccess,
    var: &str,
    range: &LoopRange,
    stats: &mut DepStats,
    ana: PairAnalysis,
) -> PairAnalysis {
    if let Some(cert) = &ana.certificate {
        match check_dep_certificate(a, b, var, range, cert) {
            Ok(()) => stats.certs_checked += 1,
            Err(e) => {
                debug_assert!(false, "self-check failed: {e}");
                return PairAnalysis::undecidable();
            }
        }
    }
    stats.pairs_decided += 1;
    ana
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_expr;

    fn acc(array: &str, subs: &[&str], write: bool) -> ArrayAccess {
        ArrayAccess {
            array: array.to_string(),
            indices: subs.iter().map(|s| parse_expr(s).unwrap()).collect(),
            write,
        }
    }

    fn range(init: i64, step: i64, trips: i64) -> LoopRange {
        LoopRange { init, step, trips }
    }

    fn run(a: &ArrayAccess, b: &ArrayAccess, r: &LoopRange) -> PairAnalysis {
        let mut st = DepStats::default();
        analyze_pair(a, b, "i", r, &mut st)
    }

    #[test]
    fn same_coefficient_distance() {
        // A[i] vs A[i-1] over i = 0..10: distance 1 (iteration space).
        let w = acc("A", &["i"], true);
        let rd = acc("A", &["i - 1"], false);
        let ana = run(&w, &rd, &range(0, 1, 10));
        assert_eq!(ana.verdict, DepVerdict::Distances(vec![1]));
        assert!(matches!(
            ana.certificate,
            Some(DepCertificate::Dependent { .. })
        ));
    }

    #[test]
    fn gcd_refutes_mismatched_strides() {
        // A[4i] vs A[2i+1]: gcd(4,2) = 2 does not divide 1.
        let w = acc("A", &["4 * i"], true);
        let rd = acc("A", &["2 * i + 1"], false);
        let ana = run(&w, &rd, &range(0, 1, 100));
        assert_eq!(ana.verdict, DepVerdict::Independent);
        assert_eq!(ana.layer, Some(DepLayer::Gcd));
        assert!(matches!(
            ana.certificate,
            Some(DepCertificate::Independent { .. })
        ));
    }

    #[test]
    fn banerjee_refutes_out_of_range_offset() {
        // A[i+101] vs A[i] over 99 trips: offset beyond the iteration box.
        let w = acc("A", &["i + 101"], true);
        let rd = acc("A", &["i"], false);
        let ana = run(&w, &rd, &range(0, 1, 99));
        assert_eq!(ana.verdict, DepVerdict::Independent);
        assert_eq!(ana.layer, Some(DepLayer::Banerjee));
    }

    #[test]
    fn coefficient_mismatch_yields_exact_distances() {
        // A[2i] vs A[i] over i = 0..4: collisions at 2t1 = t2, i.e.
        // (0,0), (1,2): distances {0, 1}.
        let w = acc("A", &["2 * i"], true);
        let rd = acc("A", &["i"], false);
        let ana = run(&w, &rd, &range(0, 1, 4));
        assert_eq!(ana.verdict, DepVerdict::Distances(vec![0, 1]));
    }

    #[test]
    fn wide_sets_are_widened_with_witness() {
        // A[2i] vs A[i] over 100 trips: 50 collisions — wider than the cap.
        let w = acc("A", &["2 * i"], true);
        let rd = acc("A", &["i"], false);
        let mut st = DepStats::default();
        let ana = analyze_pair(&w, &rd, "i", &range(0, 1, 100), &mut st);
        assert_eq!(ana.verdict, DepVerdict::AnyWithWitness);
        assert_eq!(st.widened_to_any, 1);
        let Some(DepCertificate::Dependent { t1, t2 }) = ana.certificate else {
            panic!("expected witness");
        };
        assert_eq!(2 * t1, t2); // 2·i(t1) = i(t2) with init 0, step 1
    }

    #[test]
    fn nonzero_init_and_step_normalize() {
        // for (i = 2; i < 22; i += 2): A[i] vs A[i-4] → iteration distance 2.
        let w = acc("A", &["i"], true);
        let rd = acc("A", &["i - 4"], false);
        let ana = run(&w, &rd, &range(2, 2, 10));
        assert_eq!(ana.verdict, DepVerdict::Distances(vec![2]));
    }

    #[test]
    fn negative_step_normalizes() {
        // for (i = 9; i >= 0; i--): A[i] vs A[i+1] → the read at iteration
        // t+1 sees the cell written at t: distance 1.
        let w = acc("A", &["i"], true);
        let rd = acc("A", &["i + 1"], false);
        let ana = run(&w, &rd, &range(9, -1, 10));
        assert_eq!(ana.verdict, DepVerdict::Distances(vec![1]));
    }

    #[test]
    fn multi_dim_conflict_needs_shared_iteration() {
        // A[i][i] vs A[i-1][i-2]: dim 0 forces δ=1, dim 1 forces δ=2 —
        // empty intersection, independent.
        let w = acc("A", &["i", "i"], true);
        let rd = acc("A", &["i - 1", "i - 2"], false);
        let ana = run(&w, &rd, &range(0, 1, 50));
        assert_eq!(ana.verdict, DepVerdict::Independent);
    }

    #[test]
    fn multi_dim_sat_confirms_dependence() {
        let w = acc("A", &["i", "i"], true);
        let rd = acc("A", &["i - 1", "i - 1"], false);
        let mut st = DepStats::default();
        let ana = analyze_pair(&w, &rd, "i", &range(0, 1, 50), &mut st);
        assert_eq!(ana.verdict, DepVerdict::Distances(vec![1]));
        assert_eq!(st.sat_decided, 1);
    }

    #[test]
    fn symbolic_residue_is_undecidable() {
        let w = acc("A", &["i + n"], true);
        let rd = acc("A", &["i"], false);
        let ana = run(&w, &rd, &range(0, 1, 10));
        assert_eq!(ana.verdict, DepVerdict::Undecidable);
        assert!(ana.certificate.is_none());
    }

    #[test]
    fn nonaffine_is_undecidable() {
        let w = acc("A", &["P[i]"], true);
        let rd = acc("A", &["i"], false);
        let ana = run(&w, &rd, &range(0, 1, 10));
        assert_eq!(ana.verdict, DepVerdict::Undecidable);
    }

    #[test]
    fn constant_subscripts_collide_everywhere() {
        let w = acc("A", &["0"], true);
        let rd = acc("A", &["0"], false);
        let mut st = DepStats::default();
        let ana = analyze_pair(&w, &rd, "i", &range(0, 1, 100), &mut st);
        assert_eq!(ana.verdict, DepVerdict::AnyWithWitness);
        // Small loops enumerate instead.
        let ana2 = run(&w, &rd, &range(0, 1, 3));
        assert_eq!(ana2.verdict, DepVerdict::Distances(vec![-2, -1, 0, 1, 2]));
    }

    #[test]
    fn certificates_self_check() {
        let w = acc("A", &["4 * i"], true);
        let rd = acc("A", &["2 * i + 1"], false);
        let mut st = DepStats::default();
        analyze_pair(&w, &rd, "i", &range(0, 1, 100), &mut st);
        assert_eq!(st.certs_checked, 1);
        assert_eq!(st.pairs_decided, 1);
        assert_eq!(st.gcd_hits, 1);
    }

    /// Ground-truth check: every verdict's distance set must cover the
    /// concrete collisions found by direct enumeration.
    #[test]
    fn verdicts_cover_enumeration() {
        let cases = [
            ("2 * i", "i + 3", 0, 1, 12),
            ("3 * i + 1", "2 * i", 0, 1, 9),
            ("i", "i - 2", 5, 3, 7),
            ("2 * i", "2 * i + 1", 0, 1, 20),
            ("i + 1", "2 * i", 1, 2, 6),
        ];
        for (sa, sb, init, step, trips) in cases {
            let a = acc("A", &[sa], true);
            let b = acc("A", &[sb], false);
            let r = range(init, step, trips);
            let ana = run(&a, &b, &r);
            // enumerate ground truth
            let la = parse_expr(sa).unwrap();
            let lb = parse_expr(sb).unwrap();
            let fa = crate::linform::linearize(&la).unwrap();
            let fb = crate::linform::linearize(&lb).unwrap();
            let eval =
                |f: &crate::linform::LinForm, t: i64| f.coeff("i") * (init + t * step) + f.konst;
            let mut ground: BTreeSet<i64> = BTreeSet::new();
            for t1 in 0..trips {
                for t2 in 0..trips {
                    if eval(&fa, t1) == eval(&fb, t2) {
                        ground.insert(t2 - t1);
                    }
                }
            }
            match &ana.verdict {
                DepVerdict::Independent => {
                    assert!(ground.is_empty(), "{sa} vs {sb}: missed {ground:?}")
                }
                DepVerdict::Distances(ds) => {
                    let set: BTreeSet<i64> = ds.iter().copied().collect();
                    assert!(
                        ground.is_subset(&set),
                        "{sa} vs {sb}: ground {ground:?} ⊄ {set:?}"
                    );
                }
                DepVerdict::AnyWithWitness => assert!(!ground.is_empty()),
                DepVerdict::Undecidable => panic!("{sa} vs {sb} should decide"),
            }
        }
    }
}
