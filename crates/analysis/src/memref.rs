//! The §4 memory-ref ratio used by the SLMS bad-case filter.
//!
//! `memref = LS / (LS + AO)` where `LS` counts load/store operations and
//! `AO` arithmetic operations in the loop body. Following the paper's worked
//! example (the swap loop with `LS = 6`, `AO = 1`, ratio `0.857`), `LS`
//! counts **array element accesses and loop-variant scalar accesses** —
//! reads and writes — while reads that only feed address arithmetic (scalar
//! reads inside subscripts, notably the induction variable) are excluded.

use crate::access::accesses_of_stmt;
use slc_ast::visit::{for_each_expr, walk_expr};
use slc_ast::{Expr, Stmt};

/// Load/store and arithmetic operation counts for a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Load/store operations (array accesses + non-address scalar accesses).
    pub ls: usize,
    /// Arithmetic operations (`+ - * / %`, comparisons, boolean ops,
    /// negation, selects) outside subscript expressions.
    pub ao: usize,
}

impl OpCounts {
    /// `LS / (LS + AO)`; zero for an empty body.
    pub fn memref_ratio(&self) -> f64 {
        let total = self.ls + self.ao;
        if total == 0 {
            0.0
        } else {
            self.ls as f64 / total as f64
        }
    }
}

fn count_arith(e: &Expr, ao: &mut usize) {
    // Walk the expression but do not descend into subscripts: index
    // arithmetic is address computation, not data computation.
    match e {
        Expr::Binary(_, a, b) => {
            *ao += 1;
            count_arith(a, ao);
            count_arith(b, ao);
        }
        Expr::Unary(_, a) => {
            *ao += 1;
            count_arith(a, ao);
        }
        Expr::Select(c, t, f) => {
            *ao += 1;
            count_arith(c, ao);
            count_arith(t, ao);
            count_arith(f, ao);
        }
        Expr::Call(_, args) => {
            for a in args {
                count_arith(a, ao);
            }
        }
        Expr::Index(..) | Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
    }
}

/// Count loads/stores and arithmetic operations in a loop body, excluding
/// accesses to the induction variable `var`.
pub fn op_counts(body: &[Stmt], var: &str) -> OpCounts {
    let mut c = OpCounts::default();
    for s in body {
        let acc = accesses_of_stmt(s);
        c.ls += acc.arrays.len();
        c.ls += acc
            .scalars
            .iter()
            .filter(|sc| sc.name != var && (sc.write || !sc.in_subscript))
            .count();
        // arithmetic: every operator outside subscripts
        for_each_expr(s, true, &mut |e| count_arith(e, &mut c.ao));
        // compound assignments hide one operator (`a += b` is `a = a + b`)
        count_compound_ops(s, &mut c.ao);
    }
    c
}

fn count_compound_ops(s: &Stmt, ao: &mut usize) {
    match s {
        Stmt::Assign { op, .. } if *op != slc_ast::AssignOp::Set => *ao += 1,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for st in then_branch.iter().chain(else_branch) {
                count_compound_ops(st, ao);
            }
        }
        Stmt::Block(b) | Stmt::Par(b) => {
            for st in b {
                count_compound_ops(st, ao);
            }
        }
        Stmt::For(f) => {
            for st in &f.body {
                count_compound_ops(st, ao);
            }
        }
        Stmt::While { body, .. } => {
            for st in body {
                count_compound_ops(st, ao);
            }
        }
        _ => {}
    }
}

/// Convenience wrapper: the §4 memory-ref ratio of a loop body.
pub fn memref_ratio(body: &[Stmt], var: &str) -> f64 {
    op_counts(body, var).memref_ratio()
}

/// Count how many scalar variables appear anywhere (diagnostics for MVE
/// register-pressure estimates).
pub fn distinct_scalars(body: &[Stmt], var: &str) -> usize {
    let mut names: Vec<&str> = Vec::new();
    for s in body {
        for_each_expr(s, true, &mut |e| {
            walk_expr(e, &mut |n| {
                if let Expr::Var(v) = n {
                    if v != var && !names.contains(&v.as_str()) {
                        names.push(v);
                    }
                }
            });
        });
    }
    names.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;

    #[test]
    fn paper_swap_loop_ratio() {
        // §4: CT = X[k][i]; X[k][i] = X[k][j] * 2; X[k][j] = CT;
        // LS = 6, AO = 1, ratio 0.857 → filtered at 0.85.
        let body = parse_stmts("CT = X[k][i]; X[k][i] = X[k][j] * 2.0; X[k][j] = CT;").unwrap();
        let c = op_counts(&body, "k");
        assert_eq!(c.ls, 6, "{c:?}");
        assert_eq!(c.ao, 1);
        let r = c.memref_ratio();
        assert!((r - 0.857).abs() < 0.01, "ratio {r}");
        assert!(r > 0.85);
    }

    #[test]
    fn intro_dot_product_not_filtered() {
        let body = parse_stmts("t = A[i] * B[i]; s = s + t;").unwrap();
        let c = op_counts(&body, "i");
        // loads A[i],B[i],t,s + stores t,s = 6 LS; ops: *, + = 2 AO
        assert_eq!(c.ls, 6);
        assert_eq!(c.ao, 2);
        assert!(c.memref_ratio() < 0.85);
    }

    #[test]
    fn induction_var_excluded() {
        let body = parse_stmts("a[i] += i;").unwrap();
        let c = op_counts(&body, "i");
        // a[i] read + write; `i` on the rhs excluded; `+=` is one op
        assert_eq!(c.ls, 2);
        assert_eq!(c.ao, 1);
    }

    #[test]
    fn arith_heavy_loop_low_ratio() {
        let body = parse_stmts(
            "X[k] = X[k - 1] * X[k - 1] * X[k - 1] * X[k - 1] * X[k - 1] \
             + X[k + 1] * X[k + 1] * X[k + 1] * X[k + 1] * X[k + 1];",
        )
        .unwrap();
        let c = op_counts(&body, "k");
        assert_eq!(c.ao, 9); // 8 muls + 1 add
        assert_eq!(c.ls, 11);
        assert!(c.memref_ratio() < 0.85);
    }

    #[test]
    fn empty_body() {
        assert_eq!(memref_ratio(&[], "i"), 0.0);
    }

    #[test]
    fn distinct_scalar_count() {
        let body =
            parse_stmts("t = A[i + 1]; A[i] = A[i - 1] + t; scal = B[i] / 2.0; C[i] = scal * 3.0;")
                .unwrap();
        assert_eq!(distinct_scalars(&body, "i"), 2);
    }
}
