//! Partitioning a loop body into multi-instructions (MIs).
//!
//! §3 of the paper: "The input AST is logically partitioned to
//! multi-instructions (MI), corresponding to assignments, function-calls or
//! to elementary if-statements." Each top-level statement of the loop body
//! becomes one MI; plain blocks are flattened. Nested loops, `break` and
//! already-scheduled `par` groups make the loop ineligible for SLMS.

use crate::deps::AnalysisError;
use slc_ast::Stmt;

/// Classification of a multi-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiKind {
    /// Plain assignment `lhs op= rhs;`.
    Assign,
    /// Elementary if-statement (after if-conversion these carry a single
    /// predicated assignment and an empty else branch).
    If,
    /// Opaque call — a scheduling barrier.
    Call,
}

/// One multi-instruction: an owned statement plus its classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Mi {
    /// The statement (an assignment, elementary if, or call).
    pub stmt: Stmt,
    /// Classification used by dependence construction and decomposition.
    pub kind: MiKind,
}

impl Mi {
    /// Wrap a statement, classifying it. Returns `None` for statements that
    /// cannot be MIs (loops, breaks, blocks, par groups).
    pub fn new(stmt: Stmt) -> Option<Mi> {
        let kind = match &stmt {
            Stmt::Assign { .. } => MiKind::Assign,
            Stmt::If { .. } => MiKind::If,
            Stmt::Call(..) => MiKind::Call,
            _ => return None,
        };
        Some(Mi { stmt, kind })
    }
}

/// Partition a loop body into MIs, flattening plain blocks.
///
/// Errors:
/// * [`AnalysisError::NestedLoop`] — the body contains a `for`/`while`
///   (SLMS applies to innermost loops; outer loops are handled by first
///   transforming with interchange/fusion, per §6);
/// * [`AnalysisError::BreakInLoop`] — `break` makes the trip count
///   control-dependent (the §10 while-loop extension is a separate path);
/// * [`AnalysisError::AlreadyScheduled`] — the body contains `par` groups.
pub fn partition_mis(body: &[Stmt]) -> Result<Vec<Mi>, AnalysisError> {
    let mut out = Vec::new();
    collect(body, &mut out)?;
    Ok(out)
}

fn collect(body: &[Stmt], out: &mut Vec<Mi>) -> Result<(), AnalysisError> {
    for s in body {
        match s {
            Stmt::Block(inner) => collect(inner, out)?,
            Stmt::For(_) | Stmt::While { .. } => return Err(AnalysisError::NestedLoop),
            Stmt::Break => return Err(AnalysisError::BreakInLoop),
            Stmt::Par(_) => {
                return Err(AnalysisError::AlreadyScheduled(
                    "loop body already contains par groups".into(),
                ))
            }
            other => out.push(Mi::new(other.clone()).expect("classified above")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;

    #[test]
    fn flattens_blocks() {
        let body = parse_stmts("x = 1; { y = 2; z = 3; } f(x);").unwrap();
        let mis = partition_mis(&body).unwrap();
        assert_eq!(mis.len(), 4);
        assert_eq!(mis[3].kind, MiKind::Call);
    }

    #[test]
    fn if_is_single_mi() {
        let body = parse_stmts("if (x < y) { x = x + 1; } else y = y + 1;").unwrap();
        let mis = partition_mis(&body).unwrap();
        assert_eq!(mis.len(), 1);
        assert_eq!(mis[0].kind, MiKind::If);
    }

    #[test]
    fn rejects_nested_loop_and_break() {
        let body = parse_stmts("for (j = 0; j < 3; j++) x = 1;").unwrap();
        assert_eq!(partition_mis(&body), Err(AnalysisError::NestedLoop));
        let body = parse_stmts("break;").unwrap();
        assert_eq!(partition_mis(&body), Err(AnalysisError::BreakInLoop));
    }

    #[test]
    fn rejects_par() {
        let body = parse_stmts("par { x = 1; y = 2; }").unwrap();
        assert!(matches!(
            partition_mis(&body),
            Err(AnalysisError::AlreadyScheduled(_))
        ));
    }
}
