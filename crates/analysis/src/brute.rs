//! Brute-force dependence oracle for testing.
//!
//! For loops whose subscripts involve only the induction variable and
//! integer constants, the oracle enumerates iterations over a given range,
//! records the concrete cells touched by every MI, and derives the exact set
//! of dependences. Property tests assert that [`crate::build_ddg`] *covers*
//! this ground truth — the analytical test may be conservative (extra edges,
//! `Unknown` distances) but must never miss a real dependence, which is the
//! soundness property SLMS correctness rests on.

use crate::access::accesses_of_stmt;
use crate::ddg::{Ddg, DepKind, Distance};
use crate::mi::Mi;
use slc_ast::{BinOp, Expr, Interner, Symbol, UnOp};
use std::collections::{BTreeSet, HashMap};

/// A ground-truth dependence observed by enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundDep {
    /// Source MI (executes first).
    pub from: usize,
    /// Sink MI.
    pub to: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// Iteration distance (≥ 0).
    pub dist: i64,
}

/// Evaluate a subscript with `var := val`, directly on the tree — the same
/// semantics as substituting and calling [`Expr::const_int`] (ints, unary
/// negation, `+ - * / %` with non-zero divisors), but without cloning and
/// rewriting the expression once per iteration.
fn eval_subscript(e: &Expr, var: &str, val: i64) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Var(n) if n == var => Some(val),
        Expr::Unary(UnOp::Neg, a) => eval_subscript(a, var, val).map(|v| -v),
        Expr::Binary(op, a, b) => {
            let (a, b) = (eval_subscript(a, var, val)?, eval_subscript(b, var, val)?);
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div => (b != 0).then(|| a / b),
                BinOp::Mod => (b != 0).then(|| a % b),
                _ => None,
            }
        }
        _ => None,
    }
}

/// A touched cell: interned array plus subscript vector. Subscripts of up to
/// four dimensions (every workload in the suite) stay inline — no per-cell
/// heap allocation in the enumeration loop.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Cell {
    Inline(Symbol, u8, [i64; 4]),
    Heap(Symbol, Vec<i64>),
}

impl Cell {
    fn new(array: Symbol, idx: &[i64]) -> Cell {
        if idx.len() <= 4 {
            let mut buf = [0i64; 4];
            buf[..idx.len()].copy_from_slice(idx);
            Cell::Inline(array, idx.len() as u8, buf)
        } else {
            Cell::Heap(array, idx.to_vec())
        }
    }
}

/// Enumerate dependences of `mis` over iterations `lo..hi` (step 1) of
/// variable `var`, considering **array accesses only**. Returns `None` when
/// any subscript cannot be evaluated (contains other variables or
/// non-arithmetic nodes).
///
/// Distances are capped at `max_dist` to keep test output small: real MS
/// validity only depends on short distances relative to the MI count.
pub fn brute_force_deps(
    mis: &[Mi],
    var: &str,
    lo: i64,
    hi: i64,
    max_dist: i64,
) -> Option<Vec<GroundDep>> {
    // cell → chronological list of (iteration, mi, access-ordinal, write)
    let mut names = Interner::new();
    let mut touched: HashMap<Cell, Vec<(i64, usize, usize, bool)>> = HashMap::new();
    let mut idx_buf: Vec<i64> = Vec::new();
    for (p, mi) in mis.iter().enumerate() {
        let acc = accesses_of_stmt(&mi.stmt);
        // intern each access's array once, outside the iteration sweep
        let syms: Vec<Symbol> = acc.arrays.iter().map(|a| names.intern(&a.array)).collect();
        for i in lo..hi {
            for (ord, a) in acc.arrays.iter().enumerate() {
                idx_buf.clear();
                for ix in &a.indices {
                    idx_buf.push(eval_subscript(ix, var, i)?);
                }
                touched
                    .entry(Cell::new(syms[ord], &idx_buf))
                    .or_default()
                    .push((i, p, ord, a.write));
            }
        }
    }
    let mut out: BTreeSet<GroundDep> = BTreeSet::new();
    for accesses in touched.values() {
        for (k1, &(i1, p, _o1, w1)) in accesses.iter().enumerate() {
            for &(i2, q, _o2, w2) in &accesses[k1..] {
                if !w1 && !w2 {
                    continue;
                }
                // establish execution order: (iteration, MI position)
                let (first, second) = if (i1, p) <= (i2, q) {
                    ((i1, p, w1), (i2, q, w2))
                } else {
                    ((i2, q, w2), (i1, p, w1))
                };
                let dist = second.0 - first.0;
                if dist > max_dist {
                    continue;
                }
                if dist == 0 && first.1 == second.1 {
                    continue; // intra-MI
                }
                let kind = match (first.2, second.2) {
                    (true, false) => DepKind::Flow,
                    (false, true) => DepKind::Anti,
                    (true, true) => DepKind::Output,
                    _ => continue,
                };
                out.insert(GroundDep {
                    from: first.1,
                    to: second.1,
                    kind,
                    dist,
                });
            }
        }
    }
    // BTreeSet iteration is already sorted and deduplicated
    Some(out.into_iter().collect())
}

/// True if the DDG covers the ground-truth dependence (an edge with the same
/// endpoints and kind whose distance list contains the exact distance or
/// `Unknown`).
pub fn ddg_covers(ddg: &Ddg, dep: &GroundDep) -> bool {
    ddg.edges.iter().any(|e| {
        e.from == dep.from
            && e.to == dep.to
            && e.kind == dep.kind
            && (e.dists.contains(&Distance::Const(dep.dist))
                || e.dists.contains(&Distance::Unknown))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddg::build_ddg;
    use crate::mi::partition_mis;
    use slc_ast::parse_stmts;

    fn check_sound(src: &str) {
        let body = parse_stmts(src).unwrap();
        let mis = partition_mis(&body).unwrap();
        let ddg = build_ddg(&mis, "i", 1);
        let ground = brute_force_deps(&mis, "i", 4, 24, 8).expect("evaluable loop");
        for dep in &ground {
            assert!(
                ddg_covers(&ddg, dep),
                "analysis missed {dep:?} in loop:\n{src}\nddg: {:#?}",
                ddg.edges
            );
        }
    }

    #[test]
    fn soundness_on_paper_loops() {
        check_sound("A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];");
        check_sound("A[i] = B[i - 1] + 1.0; B[i] = A[i - 2] + A[i - 3];");
        check_sound("A[i] += i; A[i] *= 6.0; A[i] -= 1.0;");
        check_sound("DU1[i] = U1[i + 1] - U1[i - 1]; U1[i + 5] = U1[i] + 2.0 * DU1[i];");
        check_sound("A[2 * i] = 1.0; x = A[2 * i + 4];");
        check_sound("A[2 * i] = 1.0; x = A[i];");
    }

    #[test]
    fn brute_force_exact_distance() {
        let body = parse_stmts("A[i] = 0.0; x = A[i - 3];").unwrap();
        let mis = partition_mis(&body).unwrap();
        let ground = brute_force_deps(&mis, "i", 0, 20, 10).unwrap();
        assert!(ground.contains(&GroundDep {
            from: 0,
            to: 1,
            kind: DepKind::Flow,
            dist: 3
        }));
        // no anti/output deps here
        assert!(ground.iter().all(|d| d.kind == DepKind::Flow));
    }

    #[test]
    fn unevaluable_returns_none() {
        let body = parse_stmts("A[i + n] = 0.0;").unwrap();
        let mis = partition_mis(&body).unwrap();
        assert!(brute_force_deps(&mis, "i", 0, 10, 5).is_none());
    }
}
