//! Linear-form normalization of subscript expressions.
//!
//! A subscript such as `2*i + j - 1` normalizes to the linear form
//! `{i: 2, j: 1} - 1`. Linear forms make the dependence test exact for the
//! affine subscripts that dominate the Livermore/Linpack/NAS loops; anything
//! non-linear (`A[i*i]`, `A[B[i]]`) yields `None` and is handled
//! conservatively by the dependence test.

use slc_ast::{BinOp, Expr, UnOp};
use std::collections::BTreeMap;

/// A linear combination of scalar variables plus a constant:
/// `konst + Σ terms[v] · v`. Terms with zero coefficient are not stored.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinForm {
    /// Per-variable integer coefficients (zero coefficients omitted).
    pub terms: BTreeMap<String, i64>,
    /// Constant offset.
    pub konst: i64,
}

impl LinForm {
    /// The constant linear form `c`.
    pub fn constant(c: i64) -> LinForm {
        LinForm {
            terms: BTreeMap::new(),
            konst: c,
        }
    }

    /// The linear form `1 · v`.
    pub fn var(v: &str) -> LinForm {
        let mut terms = BTreeMap::new();
        terms.insert(v.to_string(), 1);
        LinForm { terms, konst: 0 }
    }

    /// Coefficient of variable `v` (0 when absent).
    pub fn coeff(&self, v: &str) -> i64 {
        self.terms.get(v).copied().unwrap_or(0)
    }

    /// True if the form mentions no variables.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// `self + other`.
    pub fn add(&self, other: &LinForm) -> LinForm {
        let mut out = self.clone();
        for (v, c) in &other.terms {
            let e = out.terms.entry(v.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                out.terms.remove(v);
            }
        }
        out.konst += other.konst;
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinForm) -> LinForm {
        self.add(&other.scale(-1))
    }

    /// `self * k`.
    pub fn scale(&self, k: i64) -> LinForm {
        if k == 0 {
            return LinForm::constant(0);
        }
        LinForm {
            terms: self.terms.iter().map(|(v, c)| (v.clone(), c * k)).collect(),
            konst: self.konst * k,
        }
    }

    /// Drop variable `v` from the form, returning (coefficient, remainder).
    pub fn split_var(&self, v: &str) -> (i64, LinForm) {
        let mut rest = self.clone();
        let c = rest.terms.remove(v).unwrap_or(0);
        (c, rest)
    }
}

/// Normalize an expression into a linear form over scalar variables.
/// Returns `None` for anything non-linear: products of variables, division,
/// modulo, array references, calls, comparisons, selects.
pub fn linearize(e: &Expr) -> Option<LinForm> {
    match e {
        Expr::Int(v) => Some(LinForm::constant(*v)),
        Expr::Var(v) => Some(LinForm::var(v)),
        Expr::Unary(UnOp::Neg, a) => Some(linearize(a)?.scale(-1)),
        Expr::Binary(BinOp::Add, a, b) => Some(linearize(a)?.add(&linearize(b)?)),
        Expr::Binary(BinOp::Sub, a, b) => Some(linearize(a)?.sub(&linearize(b)?)),
        Expr::Binary(BinOp::Mul, a, b) => {
            let (la, lb) = (linearize(a)?, linearize(b)?);
            if la.is_const() {
                Some(lb.scale(la.konst))
            } else if lb.is_const() {
                Some(la.scale(lb.konst))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_expr;

    fn lf(src: &str) -> Option<LinForm> {
        linearize(&parse_expr(src).unwrap())
    }

    #[test]
    fn basic_forms() {
        let f = lf("2 * i + j - 1").unwrap();
        assert_eq!(f.coeff("i"), 2);
        assert_eq!(f.coeff("j"), 1);
        assert_eq!(f.konst, -1);
    }

    #[test]
    fn cancellation_removes_terms() {
        let f = lf("i - i + 3").unwrap();
        assert!(f.is_const());
        assert_eq!(f.konst, 3);
    }

    #[test]
    fn negation_and_nested_scale() {
        let f = lf("-(2 * (i - 1))").unwrap();
        assert_eq!(f.coeff("i"), -2);
        assert_eq!(f.konst, 2);
    }

    #[test]
    fn nonlinear_rejected() {
        assert!(lf("i * j").is_none());
        assert!(lf("i / 2").is_none());
        assert!(lf("A[i]").is_none());
        assert!(lf("i % 3").is_none());
        assert!(lf("f(i)").is_none());
    }

    #[test]
    fn split_var() {
        let f = lf("3 * i + j + 5").unwrap();
        let (c, rest) = f.split_var("i");
        assert_eq!(c, 3);
        assert_eq!(rest.coeff("i"), 0);
        assert_eq!(rest.coeff("j"), 1);
        assert_eq!(rest.konst, 5);
    }

    #[test]
    fn sub_of_equal_is_zero() {
        let a = lf("i + j + 1").unwrap();
        let b = lf("j + i + 1").unwrap();
        let d = a.sub(&b);
        assert!(d.is_const());
        assert_eq!(d.konst, 0);
    }
}
