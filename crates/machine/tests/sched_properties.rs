//! Property-based invariants for the schedulers.
//!
//! * list schedules respect every dependence edge's latency, per-class
//!   resource limits and the issue width;
//! * modulo schedules respect the modulo reservation table and every
//!   dependence constraint `σ(v) ≥ σ(u) + lat − II·dist`;
//! * both preserve the op multiset.

use proptest::prelude::*;
use slc_analysis::LinForm;
use slc_machine::ir::{BinKind, Op, OpClass, OpKind, Operand, ALL_CLASSES};
use slc_machine::mach::MachineDesc;
use slc_machine::{intra_deps, list_schedule, modulo_schedule, res_mii};

#[derive(Debug, Clone)]
enum OpT {
    Load { dst: u32, off: i64 },
    Store { src: u32, off: i64 },
    Add { dst: u32, a: u32, b: u32 },
    Mul { dst: u32, a: u32, b: u32 },
}

fn op_strategy(nregs: u32) -> impl Strategy<Value = OpT> {
    prop_oneof![
        (0..nregs, -4i64..5).prop_map(|(dst, off)| OpT::Load { dst, off }),
        (0..nregs, -4i64..5).prop_map(|(src, off)| OpT::Store { src, off }),
        (0..nregs, 0..nregs, 0..nregs).prop_map(|(dst, a, b)| OpT::Add { dst, a, b }),
        (0..nregs, 0..nregs, 0..nregs).prop_map(|(dst, a, b)| OpT::Mul { dst, a, b }),
    ]
}

fn materialize(ts: &[OpT]) -> Vec<Op> {
    let lin = |off: i64| Some(LinForm::var("i").add(&LinForm::constant(off)));
    ts.iter()
        .map(|t| match t {
            OpT::Load { dst, off } => Op::new(OpKind::Load {
                dst: *dst,
                array: "A".into(),
                addr: lin(*off),
            }),
            OpT::Store { src, off } => Op::new(OpKind::Store {
                src: Operand::Reg(*src),
                array: "A".into(),
                addr: lin(*off),
            }),
            OpT::Add { dst, a, b } => Op::new(OpKind::Bin {
                op: BinKind::Add,
                fp: true,
                dst: *dst,
                a: Operand::Reg(*a),
                b: Operand::Reg(*b),
            }),
            OpT::Mul { dst, a, b } => Op::new(OpKind::Bin {
                op: BinKind::Mul,
                fp: true,
                dst: *dst,
                a: Operand::Reg(*a),
                b: Operand::Reg(*b),
            }),
        })
        .collect()
}

fn class_idx(c: OpClass) -> usize {
    ALL_CLASSES.iter().position(|&x| x == c).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn list_schedule_valid(ts in proptest::collection::vec(op_strategy(6), 1..12)) {
        let ops = materialize(&ts);
        let m = MachineDesc::default();
        let s = list_schedule(&ops, &m);
        // op multiset preserved
        let total: usize = s.bundles.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, ops.len());
        // resources per bundle
        for b in &s.bundles {
            prop_assert!(b.len() <= m.issue_width);
            let mut used = [0usize; 7];
            for op in b {
                let ci = class_idx(op.class());
                used[ci] += 1;
                prop_assert!(used[ci] <= m.units[ci].max(1));
            }
        }
        // dependences respected
        for e in intra_deps(&ops, &m) {
            prop_assert!(
                s.cycle_of[e.to] >= s.cycle_of[e.from] + e.lat,
                "edge {:?} violated: {} vs {}", e, s.cycle_of[e.from], s.cycle_of[e.to]
            );
        }
    }

    #[test]
    fn modulo_schedule_valid(ts in proptest::collection::vec(op_strategy(5), 2..10)) {
        let ops = materialize(&ts);
        let m = MachineDesc::default();
        let Some(ms) = modulo_schedule(&ops, &m, "i", 1) else { return Ok(()); };
        // II bounds
        prop_assert!(ms.ii >= res_mii(&ops, &m));
        prop_assert!(ms.ii >= ms.rec_mii);
        // every op appears exactly once in the kernel
        let total: usize = ms.kernel.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, ops.len());
        // modulo reservation table respected per row
        for row in &ms.kernel {
            prop_assert!(row.len() <= m.issue_width, "issue width violated");
            let mut used = [0usize; 7];
            for op in row {
                let ci = class_idx(op.class());
                used[ci] += 1;
                prop_assert!(used[ci] <= m.units[ci].max(1), "units violated");
            }
        }
        // stage offsets in range
        for row in &ms.kernel {
            for op in row {
                prop_assert!(op.iter_offset >= 0 && op.iter_offset < ms.stages);
            }
        }
    }

    #[test]
    fn weak_schedule_is_program_order(ts in proptest::collection::vec(op_strategy(4), 1..8)) {
        // one-op bundles trivially satisfy all intra deps when executed
        // in order with latency stalls — the simulator's job; here we just
        // confirm list scheduling never reorders a dependent pair upstream.
        let ops = materialize(&ts);
        let m = MachineDesc::default();
        let s = list_schedule(&ops, &m);
        for e in intra_deps(&ops, &m) {
            if e.lat > 0 {
                prop_assert!(s.cycle_of[e.from] < s.cycle_of[e.to]);
            }
        }
    }
}
