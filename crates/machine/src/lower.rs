//! Lowering from the AST to the three-address IR.
//!
//! Design decisions (documented deviations are part of the machine model,
//! not shortcuts in the algorithms):
//!
//! * **Branch-free blocks.** Source `if`s lower to predicated ops (IA-64
//!   style); the predicate network is computed with `Logic` ops. Both the
//!   weak and the strong final-compiler models therefore schedule the same
//!   shape of code, like the paper's predicated targets.
//! * **Address modes are free.** Subscript arithmetic is folded into the
//!   symbolic address linear form carried by each memory op (base+offset
//!   addressing); no explicit address ops are emitted.
//! * **Scalars live in registers.** Every scalar gets a dedicated virtual
//!   register (Tiny's model: the "final compiler shall use a register for
//!   the new local variable"). The register allocator later decides whether
//!   the architected file can hold them.
//! * **Constant trip counts.** The trace-based cycle simulator needs them;
//!   every workload in the suite is constant-bound. `while`/`break`/opaque
//!   calls are rejected.

use crate::ir::{BinKind, Lir, LirLoop, LirProgram, Op, OpKind, Operand, VReg};
use slc_analysis::linform::{linearize, LinForm};
use slc_ast::{AssignOp, BinOp, Expr, LValue, Program, Stmt, Ty, UnOp};
use std::collections::HashMap;

/// Lowering errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// `while` loops are not lowerable (no trip count).
    WhileLoop,
    /// `break` is not lowerable.
    Break,
    /// Opaque calls in statement position have no machine semantics.
    OpaqueCall(String),
    /// Loop bounds must be constants.
    SymbolicBounds,
    /// Reference to an undeclared variable.
    Undeclared(String),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::WhileLoop => write!(f, "cannot lower while loop"),
            LowerError::Break => write!(f, "cannot lower break"),
            LowerError::OpaqueCall(n) => write!(f, "cannot lower opaque call {n}"),
            LowerError::SymbolicBounds => write!(f, "loop bounds must be constant"),
            LowerError::Undeclared(n) => write!(f, "undeclared variable {n}"),
        }
    }
}

impl std::error::Error for LowerError {}

struct Lowerer<'p> {
    prog: &'p Program,
    next_reg: VReg,
    scalar_reg: HashMap<String, VReg>,
    arrays: HashMap<String, Vec<usize>>, // dims
}

impl<'p> Lowerer<'p> {
    fn new(prog: &'p Program) -> Self {
        let mut me = Lowerer {
            prog,
            next_reg: 0,
            scalar_reg: HashMap::new(),
            arrays: HashMap::new(),
        };
        for d in &prog.decls {
            if d.is_array() {
                me.arrays.insert(d.name.clone(), d.dims.clone());
            } else {
                let r = me.fresh();
                me.scalar_reg.insert(d.name.clone(), r);
            }
        }
        me
    }

    fn fresh(&mut self) -> VReg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn scalar(&self, name: &str) -> Result<VReg, LowerError> {
        self.scalar_reg
            .get(name)
            .copied()
            .ok_or_else(|| LowerError::Undeclared(name.to_string()))
    }

    fn scalar_is_fp(&self, name: &str) -> bool {
        self.prog
            .decl(name)
            .map(|d| d.ty == Ty::Float)
            .unwrap_or(false)
    }

    fn array_is_fp(&self, name: &str) -> bool {
        self.prog
            .decl(name)
            .map(|d| d.ty == Ty::Float)
            .unwrap_or(true)
    }

    /// Row-major linearized address form of a subscript list, if affine.
    fn address(&self, array: &str, idx: &[Expr]) -> Option<LinForm> {
        let dims = self.arrays.get(array)?;
        if dims.len() != idx.len() {
            return None;
        }
        let mut lin = LinForm::constant(0);
        for (k, e) in idx.iter().enumerate() {
            let f = linearize(e)?;
            let stride: usize = dims[k + 1..].iter().product::<usize>().max(1);
            lin = lin.add(&f.scale(stride as i64));
        }
        Some(lin)
    }

    /// Lower an expression; returns (operand holding the value, is_fp).
    fn expr(
        &mut self,
        e: &Expr,
        pred: Option<(VReg, bool)>,
        out: &mut Vec<Op>,
    ) -> Result<(Operand, bool), LowerError> {
        match e {
            Expr::Int(v) => Ok((Operand::ImmI(*v), false)),
            Expr::Float(v) => Ok((Operand::ImmF(*v), true)),
            Expr::Var(n) => Ok((Operand::Reg(self.scalar(n)?), self.scalar_is_fp(n))),
            Expr::Index(n, idx) => {
                let addr = self.address(n, idx);
                let dst = self.fresh();
                let mut op = Op::new(OpKind::Load {
                    dst,
                    array: n.clone(),
                    addr,
                });
                op.pred = pred;
                out.push(op);
                Ok((Operand::Reg(dst), self.array_is_fp(n)))
            }
            Expr::Unary(UnOp::Neg, a) => {
                let (va, fp) = self.expr(a, pred, out)?;
                let dst = self.fresh();
                let zero = if fp {
                    Operand::ImmF(0.0)
                } else {
                    Operand::ImmI(0)
                };
                let mut op = Op::new(OpKind::Bin {
                    op: BinKind::Sub,
                    fp,
                    dst,
                    a: zero,
                    b: va,
                });
                op.pred = pred;
                out.push(op);
                Ok((Operand::Reg(dst), fp))
            }
            Expr::Unary(UnOp::Not, a) => {
                let (va, _) = self.expr(a, pred, out)?;
                let dst = self.fresh();
                let mut op = Op::new(OpKind::Bin {
                    op: BinKind::Not,
                    fp: false,
                    dst,
                    a: va,
                    b: Operand::ImmI(0),
                });
                op.pred = pred;
                out.push(op);
                Ok((Operand::Reg(dst), false))
            }
            Expr::Binary(bop, a, b) => {
                let (va, fa) = self.expr(a, pred, out)?;
                let (vb, fb) = self.expr(b, pred, out)?;
                let fp = fa || fb;
                let (kind, rfp, resfp) = match bop {
                    BinOp::Add => (BinKind::Add, fp, fp),
                    BinOp::Sub => (BinKind::Sub, fp, fp),
                    BinOp::Mul => (BinKind::Mul, fp, fp),
                    BinOp::Div => (BinKind::Div, fp, fp),
                    BinOp::Mod => (BinKind::Mod, fp, fp),
                    BinOp::Cmp(c) => (BinKind::Cmp(*c), fp, false),
                    BinOp::And => (BinKind::And, fp, false),
                    BinOp::Or => (BinKind::Or, fp, false),
                };
                let dst = self.fresh();
                let mut op = Op::new(OpKind::Bin {
                    op: kind,
                    fp: rfp,
                    dst,
                    a: va,
                    b: vb,
                });
                op.pred = pred;
                out.push(op);
                Ok((Operand::Reg(dst), resfp))
            }
            Expr::Select(c, t, f) => {
                let (vc, _) = self.expr(c, pred, out)?;
                let (vt, ft) = self.expr(t, pred, out)?;
                let (vf, ff) = self.expr(f, pred, out)?;
                let creg = self.operand_to_reg(vc, false, pred, out);
                let dst = self.fresh();
                let mut m1 = Op::new(OpKind::Mov { dst, src: vf });
                m1.pred = pred;
                out.push(m1);
                // overwrite under the select predicate; an outer predicate
                // is conjoined conservatively by nesting the mov
                let mut m2 = Op::new(OpKind::Mov { dst, src: vt });
                m2.pred = Some((creg, true));
                out.push(m2);
                Ok((Operand::Reg(dst), ft || ff))
            }
            Expr::Call(name, args) => {
                // Pure intrinsic: semantically faithful long-latency FP op.
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.expr(a, pred, out)?.0);
                }
                let dst = self.fresh();
                let heavy = matches!(name.as_str(), "sqrt" | "exp");
                let mut op = Op::new(OpKind::Intrinsic {
                    name: name.clone(),
                    dst,
                    args: vals,
                    heavy,
                });
                op.pred = pred;
                out.push(op);
                Ok((Operand::Reg(dst), true))
            }
        }
    }

    fn operand_to_reg(
        &mut self,
        o: Operand,
        _fp: bool,
        pred: Option<(VReg, bool)>,
        out: &mut Vec<Op>,
    ) -> VReg {
        match o {
            Operand::Reg(r) => r,
            imm => {
                let dst = self.fresh();
                let mut op = Op::new(OpKind::Mov { dst, src: imm });
                op.pred = pred;
                out.push(op);
                dst
            }
        }
    }

    fn assign(
        &mut self,
        target: &LValue,
        aop: AssignOp,
        value: &Expr,
        pred: Option<(VReg, bool)>,
        out: &mut Vec<Op>,
    ) -> Result<(), LowerError> {
        // Build the effective RHS: `target op value` for compound forms.
        let rhs_val = if aop == AssignOp::Set {
            self.expr(value, pred, out)?
        } else {
            let (old, fo) = self.expr(&target.as_expr(), pred, out)?;
            let (vb, fb) = self.expr(value, pred, out)?;
            let fp = fo || fb;
            let kind = match aop {
                AssignOp::Add => BinKind::Add,
                AssignOp::Sub => BinKind::Sub,
                AssignOp::Mul => BinKind::Mul,
                AssignOp::Div => BinKind::Div,
                AssignOp::Set => unreachable!(),
            };
            let dst = self.fresh();
            let mut op = Op::new(OpKind::Bin {
                op: kind,
                fp,
                dst,
                a: old,
                b: vb,
            });
            op.pred = pred;
            out.push(op);
            (Operand::Reg(dst), fp)
        };
        match target {
            LValue::Var(n) => {
                let dst = self.scalar(n)?;
                let mut op = Op::new(OpKind::Mov {
                    dst,
                    src: rhs_val.0,
                });
                op.pred = pred;
                out.push(op);
            }
            LValue::Index(n, idx) => {
                let addr = self.address(n, idx);
                let mut op = Op::new(OpKind::Store {
                    src: rhs_val.0,
                    array: n.clone(),
                    addr,
                });
                op.pred = pred;
                out.push(op);
            }
        }
        Ok(())
    }

    /// Conjoin an optional outer predicate with a fresh condition value.
    fn conjoin(&mut self, outer: Option<(VReg, bool)>, cond: Operand, out: &mut Vec<Op>) -> VReg {
        let creg = self.operand_to_reg(cond, false, outer, out);
        match outer {
            None => creg,
            Some((p, sense)) => {
                // eff = (sense ? p : !p) && c
                let pv = if sense {
                    Operand::Reg(p)
                } else {
                    let np = self.fresh();
                    out.push(Op::new(OpKind::Bin {
                        op: BinKind::Not,
                        fp: false,
                        dst: np,
                        a: Operand::Reg(p),
                        b: Operand::ImmI(0),
                    }));
                    Operand::Reg(np)
                };
                let eff = self.fresh();
                out.push(Op::new(OpKind::Bin {
                    op: BinKind::And,
                    fp: false,
                    dst: eff,
                    a: pv,
                    b: Operand::Reg(creg),
                }));
                eff
            }
        }
    }

    fn stmts(
        &mut self,
        stmts: &[Stmt],
        pred: Option<(VReg, bool)>,
        block: &mut Vec<Op>,
        items: &mut Vec<Lir>,
    ) -> Result<(), LowerError> {
        for s in stmts {
            match s {
                Stmt::Assign { target, op, value } => {
                    self.assign(target, *op, value, pred, block)?;
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let (vc, _) = self.expr(cond, pred, block)?;
                    let eff = self.conjoin(pred, vc, block);
                    self.stmts(then_branch, Some((eff, true)), block, items)?;
                    if !else_branch.is_empty() {
                        self.stmts(else_branch, Some((eff, false)), block, items)?;
                    }
                }
                Stmt::Block(b) | Stmt::Par(b) => {
                    self.stmts(b, pred, block, items)?;
                }
                Stmt::For(f) => {
                    if pred.is_some() {
                        // loops under predicates do not occur in the suite
                        return Err(LowerError::SymbolicBounds);
                    }
                    let trips = f.trip_count().ok_or(LowerError::SymbolicBounds)?;
                    let init = f.init.const_int().ok_or(LowerError::SymbolicBounds)?;
                    let bound_c = f.bound.const_int().ok_or(LowerError::SymbolicBounds)?;
                    // initialize the induction variable's register, then
                    // flush the current straight-line block
                    let var_reg_init = self.scalar(&f.var)?;
                    block.push(Op::new(OpKind::Mov {
                        dst: var_reg_init,
                        src: Operand::ImmI(init),
                    }));
                    if !block.is_empty() {
                        items.push(Lir::Block(std::mem::take(block)));
                    }
                    let mut inner_items = Vec::new();
                    let mut inner_block = Vec::new();
                    self.stmts(&f.body, None, &mut inner_block, &mut inner_items)?;
                    // loop control: var update + compare + branch
                    let var_reg = self.scalar(&f.var)?;
                    inner_block.push(Op::new(OpKind::Bin {
                        op: BinKind::Add,
                        fp: false,
                        dst: var_reg,
                        a: Operand::Reg(var_reg),
                        b: Operand::ImmI(f.step),
                    }));
                    let cmp = self.fresh();
                    inner_block.push(Op::new(OpKind::Bin {
                        op: BinKind::Cmp(f.cmp),
                        fp: false,
                        dst: cmp,
                        a: Operand::Reg(var_reg),
                        b: Operand::ImmI(bound_c),
                    }));
                    let mut br = Op::new(OpKind::Branch);
                    br.pred = Some((cmp, true));
                    inner_block.push(br);
                    inner_items.push(Lir::Block(inner_block));
                    items.push(Lir::Loop(LirLoop {
                        var: f.var.clone(),
                        init,
                        step: f.step,
                        trips,
                        body: inner_items,
                    }));
                }
                Stmt::While { .. } => return Err(LowerError::WhileLoop),
                Stmt::Break => return Err(LowerError::Break),
                Stmt::Call(n, _) => return Err(LowerError::OpaqueCall(n.clone())),
            }
        }
        Ok(())
    }
}

/// Lower a whole program.
pub fn lower_program(prog: &Program) -> Result<LirProgram, LowerError> {
    let mut lw = Lowerer::new(prog);
    let mut items = Vec::new();
    let mut block = Vec::new();
    lw.stmts(&prog.stmts, None, &mut block, &mut items)?;
    if !block.is_empty() {
        items.push(Lir::Block(block));
    }
    let arrays = prog
        .decls
        .iter()
        .filter(|d| d.is_array())
        .map(|d| (d.name.clone(), d.len()))
        .collect();
    let scalar_regs = lw.scalar_reg.iter().map(|(n, r)| (n.clone(), *r)).collect();
    Ok(LirProgram {
        items,
        n_regs: lw.next_reg,
        arrays,
        scalar_regs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_program;

    fn lower(src: &str) -> LirProgram {
        lower_program(&parse_program(src).unwrap()).unwrap()
    }

    fn body_ops(lir: &LirProgram) -> &[Op] {
        for item in &lir.items {
            if let Lir::Loop(l) = item {
                if let Some(Lir::Block(b)) = l.body.first() {
                    return b;
                }
            }
        }
        panic!("no loop found");
    }

    #[test]
    fn simple_loop_shape() {
        let lir =
            lower("float A[16]; float B[16]; int i; for (i = 0; i < 16; i++) A[i] = B[i] * 2.0;");
        let ops = body_ops(&lir);
        // load, mul, store + (add, cmp, branch) loop control
        assert_eq!(ops.len(), 6);
        assert!(matches!(ops[0].kind, OpKind::Load { .. }));
        assert!(matches!(
            ops[1].kind,
            OpKind::Bin {
                op: BinKind::Mul,
                fp: true,
                ..
            }
        ));
        assert!(matches!(ops[2].kind, OpKind::Store { .. }));
        assert!(matches!(ops[5].kind, OpKind::Branch));
    }

    #[test]
    fn address_linform() {
        let lir = lower("float M[4][8]; int i; for (i = 0; i < 4; i++) M[i][3] = 0.0;");
        let ops = body_ops(&lir);
        let OpKind::Store { addr: Some(a), .. } = &ops[0].kind else {
            panic!("{:?}", ops[0]);
        };
        // row-major: 8*i + 3
        assert_eq!(a.coeff("i"), 8);
        assert_eq!(a.konst, 3);
    }

    #[test]
    fn predication() {
        let lir = lower("float A[8]; int c; int i; for (i = 0; i < 8; i++) if (c) A[i] = 1.0;");
        let ops = body_ops(&lir);
        let store = ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::Store { .. }))
            .unwrap();
        assert!(store.pred.is_some());
    }

    #[test]
    fn compound_assign_reads_then_writes() {
        let lir = lower("float A[8]; int i; for (i = 0; i < 8; i++) A[i] += 1.0;");
        let ops = body_ops(&lir);
        assert!(matches!(ops[0].kind, OpKind::Load { .. }));
        assert!(matches!(ops[1].kind, OpKind::Bin { .. }));
        assert!(matches!(ops[2].kind, OpKind::Store { .. }));
    }

    #[test]
    fn while_rejected() {
        let p = parse_program("int i; while (i < 3) i += 1;").unwrap();
        assert_eq!(lower_program(&p).unwrap_err(), LowerError::WhileLoop);
    }

    #[test]
    fn nested_loops_nest_in_lir() {
        let lir = lower(
            "float A[4][4]; int i; int j;\n\
             for (i = 0; i < 4; i++) for (j = 0; j < 4; j++) A[i][j] = 0.0;",
        );
        let outer = lir
            .items
            .iter()
            .find_map(|it| match it {
                Lir::Loop(l) => Some(l),
                _ => None,
            })
            .expect("outer loop present");
        assert!(outer.body.iter().any(|it| matches!(it, Lir::Loop(_))));
    }

    #[test]
    fn scalar_accumulator_uses_same_reg() {
        let lir = lower("float A[8]; float s; int i; for (i = 0; i < 8; i++) s += A[i];");
        let ops = body_ops(&lir);
        // mov into `s` writes the same register the next iteration reads
        let movs: Vec<_> = ops
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Mov { dst, .. } => Some(*dst),
                _ => None,
            })
            .collect();
        assert_eq!(movs.len(), 1);
    }
}
