//! # slc-machine — the "final compiler" substrate
//!
//! The paper's pipeline is *source → SLMS → final compiler → hardware*
//! (Fig. 3/4). This crate is the final compiler: a three-address IR
//! ([`ir`]), lowering with predication and symbolic memory addresses
//! ([`lower`]), dependence analysis on IR ([`deps`]), a list scheduler for
//! basic blocks ([`listsched`]), Rau's iterative modulo scheduler as the
//! machine-level MS baseline ([`ims`]), and register-pressure/spill
//! accounting ([`regalloc`]) — all parameterized by a machine description
//! ([`mach`]).
//!
//! Three "compiler personalities" used by the experiment pipeline:
//!
//! * **weak** (GCC −O0 analogue): ops issue in program order;
//! * **optimizing** (GCC −O3 analogue): list scheduling of loop bodies;
//! * **MS-enabled** (ICC/XLC analogue): list scheduling plus iterative
//!   modulo scheduling of innermost loops.

pub mod asm;
pub mod deps;
pub mod ims;
pub mod ir;
pub mod lirinterp;
pub mod listsched;
pub mod lower;
pub mod mach;
pub mod regalloc;

pub use asm::{bundles_to_string, op_to_string};
pub use deps::{cross_deps, intra_deps, IrEdge};
pub use ims::{modulo_schedule, res_mii, ModuloSchedule};
pub use ir::{Bundle, Lir, LirLoop, LirProgram, Op, OpClass, OpKind, Operand, VReg};
pub use lirinterp::{exec_lir, exec_lir_spanned, LirExecError, LirState, RVal};
pub use listsched::{list_schedule, Schedule};
pub use lower::{lower_program, LowerError};
pub use mach::{CacheConfig, IssueModel, MachineDesc};
pub use regalloc::{max_pressure, spills, SpillInfo};
