//! Iterative Modulo Scheduling (Rau, MICRO'94 / HPL-94-115) — the
//! machine-level baseline SLMS is compared against (figures 18–20, §7).
//!
//! The implementation follows Rau's algorithm: MII = max(ResMII, RecMII);
//! operations are placed highest-priority-first into a modulo reservation
//! table of II rows, retrying/evicting with a budget, and II grows until a
//! schedule exists. Cross-iteration register lifetimes are assumed to be
//! handled by rotating registers / modulo variable expansion; their cost is
//! charged through the register-pressure estimate, which the register
//! allocator turns into spill penalties (reproducing the §7 Fig. 11
//! register-pressure failure mode).

#![allow(clippy::needless_range_loop)] // index loops mirror the papers' pseudo-code
use crate::deps::{cross_deps, intra_deps, IrEdge};
use crate::ir::{Bundle, Op, OpClass, ALL_CLASSES};
use crate::listsched::heights;
use crate::mach::MachineDesc;

/// A complete modulo schedule of one innermost loop body.
#[derive(Debug, Clone)]
pub struct ModuloSchedule {
    /// achieved initiation interval
    pub ii: i64,
    /// number of pipeline stages (`⌊max σ / II⌋ + 1`)
    pub stages: i64,
    /// kernel: II bundles; each op's `iter_offset` tells the simulator how
    /// many iterations ahead of the kernel's nominal index it runs
    pub kernel: Vec<Bundle>,
    /// resource-constrained MII
    pub res_mii: i64,
    /// recurrence-constrained MII
    pub rec_mii: i64,
    /// estimated simultaneously-live register count (after MVE versioning)
    pub reg_pressure: usize,
}

fn class_idx(c: OpClass) -> usize {
    ALL_CLASSES.iter().position(|&x| x == c).unwrap()
}

/// Does the def at `u` reach the use at `v` within the same iteration
/// (i.e. `u` is the latest def of its register before `v`)?
fn reaches_same_iter(ops: &[Op], u: usize, v: usize) -> bool {
    let r = ops[u].dst().expect("def");
    v > u && !(u + 1..v).any(|w| ops[w].dst() == Some(r))
}

/// Is `u` the last def of register `r` in the block (the one whose value
/// crosses the back edge)?
fn is_last_def(ops: &[Op], u: usize, r: crate::ir::VReg) -> bool {
    !(u + 1..ops.len()).any(|w| ops[w].dst() == Some(r))
}

/// Resource-constrained MII.
pub fn res_mii(ops: &[Op], m: &MachineDesc) -> i64 {
    let mut counts = [0usize; 7];
    for o in ops {
        counts[class_idx(o.class())] += 1;
    }
    let mut mii = ops.len().div_ceil(m.issue_width).max(1);
    for (ci, &cnt) in counts.iter().enumerate() {
        if cnt == 0 {
            continue;
        }
        let units = m.units[ci].max(1);
        mii = mii.max(cnt.div_ceil(units));
    }
    mii as i64
}

/// Recurrence-constrained MII: smallest II with no positive cycle of
/// `lat − II·dist`. `None` when none exists below `max_ii`.
pub fn rec_mii(n: usize, edges: &[IrEdge], max_ii: i64) -> Option<i64> {
    'next: for ii in 1..=max_ii {
        const NEG: i64 = i64::MIN / 4;
        let mut d = vec![vec![NEG; n]; n];
        for e in edges {
            let w = e.lat as i64 - ii * e.dist;
            if w > d[e.from][e.to] {
                d[e.from][e.to] = w;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if d[i][k] == NEG {
                    continue;
                }
                for j in 0..n {
                    if d[k][j] != NEG && d[i][k] + d[k][j] > d[i][j] {
                        d[i][j] = d[i][k] + d[k][j];
                    }
                }
            }
        }
        for i in 0..n {
            if d[i][i] > 0 {
                continue 'next;
            }
        }
        return Some(ii);
    }
    None
}

/// Modulo-schedule a loop body. Returns `None` when the loop cannot be
/// software-pipelined (unknown cross-iteration memory dependences, or no
/// feasible II up to the sequential bound).
pub fn modulo_schedule(
    ops: &[Op],
    m: &MachineDesc,
    var: &str,
    step: i64,
) -> Option<ModuloSchedule> {
    let n = ops.len();
    if n == 0 {
        return None;
    }
    let mut edges = intra_deps(ops, m);
    edges.extend(cross_deps(ops, m, var, step)?);
    let total_lat: i64 = ops.iter().map(|o| m.latency_of(o.class()) as i64).sum();
    let max_ii = total_lat.max(n as i64) + 2;
    let rmii = res_mii(ops, m);
    let cmii = rec_mii(n, &edges, max_ii)?;
    let mii = rmii.max(cmii);
    let h = heights(n, &edges);

    'try_ii: for ii in mii..=max_ii {
        let iiu = ii as usize;
        let mut sigma: Vec<Option<i64>> = vec![None; n];
        let mut prev_try: Vec<i64> = vec![-1; n];
        let mut budget = 8 * n as i64 + 32;
        // modulo reservation table: per row, per class usage + issue count
        let mut rt_class = vec![[0usize; 7]; iiu];
        let mut rt_issue = vec![0usize; iiu];

        let place = |sigma: &Vec<Option<i64>>,
                     rt_class: &Vec<[usize; 7]>,
                     rt_issue: &Vec<usize>,
                     u: usize,
                     t: i64|
         -> bool {
            let _ = sigma;
            let row = (t.rem_euclid(ii)) as usize;
            let ci = class_idx(ops[u].class());
            rt_class[row][ci] < m.units[ci].max(1) && rt_issue[row] < m.issue_width
        };

        while let Some(u) = (0..n)
            .filter(|&u| sigma[u].is_none())
            .max_by_key(|&u| (h[u], std::cmp::Reverse(u)))
        {
            if budget == 0 {
                continue 'try_ii;
            }
            budget -= 1;
            // earliest start from scheduled predecessors
            let mut estart = 0i64;
            for e in &edges {
                if e.to == u {
                    if let Some(sp) = sigma[e.from] {
                        estart = estart.max(sp + e.lat as i64 - ii * e.dist);
                    }
                }
            }
            estart = estart.max(0);
            // find a resource-feasible slot in [estart, estart+II)
            let mut slot = None;
            for t in estart..estart + ii {
                if place(&sigma, &rt_class, &rt_issue, u, t) {
                    slot = Some(t);
                    break;
                }
            }
            let t = slot.unwrap_or_else(|| {
                // forced placement with progress guarantee
                if estart > prev_try[u] {
                    estart
                } else {
                    prev_try[u] + 1
                }
            });
            prev_try[u] = t;
            // evict resource conflicts at the target row
            let row = (t.rem_euclid(ii)) as usize;
            let ci = class_idx(ops[u].class());
            loop {
                let class_over = rt_class[row][ci] >= m.units[ci].max(1);
                let issue_over = rt_issue[row] >= m.issue_width;
                if !class_over && !issue_over {
                    break;
                }
                // evict the lowest-priority op occupying this row (matching
                // class if the class is the bottleneck)
                let victim = (0..n)
                    .filter(|&v| {
                        sigma[v].is_some_and(|sv| (sv.rem_euclid(ii)) as usize == row)
                            && (!class_over || class_idx(ops[v].class()) == ci)
                    })
                    .min_by_key(|&v| h[v]);
                let Some(v) = victim else { break };
                let sv = sigma[v].take().unwrap();
                let vrow = (sv.rem_euclid(ii)) as usize;
                rt_class[vrow][class_idx(ops[v].class())] -= 1;
                rt_issue[vrow] -= 1;
            }
            // evict dependence violations where u is the source
            for e in &edges {
                if e.from == u {
                    if let Some(sv) = sigma[e.to] {
                        if sv < t + e.lat as i64 - ii * e.dist {
                            let vrow = (sv.rem_euclid(ii)) as usize;
                            rt_class[vrow][class_idx(ops[e.to].class())] -= 1;
                            rt_issue[vrow] -= 1;
                            sigma[e.to] = None;
                        }
                    }
                }
            }
            sigma[u] = Some(t);
            rt_class[row][ci] += 1;
            rt_issue[row] += 1;
        }
        // verify every edge (paranoia: eviction should have handled all)
        let ok = edges.iter().all(|e| {
            let (su, sv) = (sigma[e.from].unwrap(), sigma[e.to].unwrap());
            sv >= su + e.lat as i64 - ii * e.dist
        });
        if !ok {
            continue 'try_ii;
        }
        let max_sigma = sigma.iter().map(|s| s.unwrap()).max().unwrap();
        let stages = max_sigma / ii + 1;
        // kernel bundles
        let mut kernel: Vec<Bundle> = vec![Vec::new(); iiu];
        for (u, s) in sigma.iter().enumerate() {
            let s = s.unwrap();
            let stage = s / ii;
            let mut op = ops[u].clone();
            op.iter_offset = (stages - 1) - stage;
            kernel[(s % ii) as usize].push(op);
        }
        // Register pressure after modulo variable expansion: lifetime of
        // each *register* value from its defining op to its consumers
        // (same-iteration consumers later in the block; earlier consumers
        // read the previous iteration's value → one extra II). Memory
        // dependence edges carry no register value and are excluded.
        let mut pressure = 0usize;
        for u in 0..n {
            let Some(r) = ops[u].dst() else { continue };
            let su = sigma[u].unwrap();
            let mut life: i64 = 1;
            for (v, op_v) in ops.iter().enumerate() {
                if !op_v.srcs().contains(&r) {
                    continue;
                }
                let dist = if reaches_same_iter(ops, u, v) { 0 } else { 1 };
                if dist == 1 && !is_last_def(ops, u, r) {
                    continue; // a later def feeds the next iteration instead
                }
                if let Some(sv) = sigma[v] {
                    life = life.max(sv + ii * dist - su);
                }
            }
            pressure += (((life + ii - 1) / ii).max(1)) as usize;
        }
        return Some(ModuloSchedule {
            ii,
            stages,
            kernel,
            res_mii: rmii,
            rec_mii: cmii,
            reg_pressure: pressure,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinKind, OpKind, Operand};
    use slc_analysis::LinForm;

    fn lin(c: i64, k: i64) -> LinForm {
        LinForm::var("i").scale(c).add(&LinForm::constant(k))
    }

    fn load(dst: u32, k: i64) -> Op {
        Op::new(OpKind::Load {
            dst,
            array: "A".into(),
            addr: Some(lin(1, k)),
        })
    }

    fn store(src: u32, arr: &str, k: i64) -> Op {
        Op::new(OpKind::Store {
            src: Operand::Reg(src),
            array: arr.into(),
            addr: Some(lin(1, k)),
        })
    }

    fn fadd(dst: u32, a: u32, b: u32) -> Op {
        Op::new(OpKind::Bin {
            op: BinKind::Add,
            fp: true,
            dst,
            a: Operand::Reg(a),
            b: Operand::Reg(b),
        })
    }

    #[test]
    fn res_mii_counts_units() {
        let m = MachineDesc::default(); // 2 mem units
        let ops = vec![load(0, 0), load(1, 1), load(2, 2), load(3, 3)];
        assert_eq!(res_mii(&ops, &m), 2);
    }

    #[test]
    fn independent_body_pipelines_to_ii_near_resources() {
        let m = MachineDesc::default();
        // B[i] = A[i] + A[i+1]: load, load, add, store → ResMII ≥ 2 (3 mem/2)
        let ops = vec![load(0, 0), load(1, 1), fadd(2, 0, 1), store(2, "B", 0)];
        let ms = modulo_schedule(&ops, &m, "i", 1).unwrap();
        assert_eq!(ms.ii, 2, "{ms:?}");
        assert!(ms.stages >= 2);
        assert_eq!(ms.kernel.iter().map(|b| b.len()).sum::<usize>(), 4);
    }

    #[test]
    fn recurrence_limits_ii() {
        let m = MachineDesc::default(); // FpAdd lat 3
                                        // A[i] = A[i-1] + c: load A[i-1], add, store A[i] — cross flow via
                                        // memory at distance 1 with the store→load chain.
        let ops = vec![load(0, -1), fadd(1, 0, 0), store(1, "A", 0)];
        let ms = modulo_schedule(&ops, &m, "i", 1).unwrap();
        // cycle: load(2) → add(3) → store(1 to next load) over distance 1
        assert!(ms.rec_mii >= 5, "{ms:?}");
        assert_eq!(ms.ii, ms.rec_mii.max(ms.res_mii));
    }

    #[test]
    fn accumulator_recurrence() {
        let m = MachineDesc::default();
        // s += A[i]: add dst=s uses s → self flow dist 1, lat 3 → RecMII 3
        let ops = vec![load(0, 0), fadd(9, 9, 0)];
        let ms = modulo_schedule(&ops, &m, "i", 1).unwrap();
        assert_eq!(ms.rec_mii, 3);
    }

    #[test]
    fn unknown_memory_refuses() {
        let m = MachineDesc::default();
        let ops = vec![
            Op::new(OpKind::Store {
                src: Operand::Reg(0),
                array: "A".into(),
                addr: None,
            }),
            load(1, 0),
        ];
        assert!(modulo_schedule(&ops, &m, "i", 1).is_none());
    }

    #[test]
    fn kernel_offsets_within_stage_range() {
        let m = MachineDesc::default();
        let ops = vec![load(0, 1), fadd(1, 0, 0), store(1, "B", 0)];
        let ms = modulo_schedule(&ops, &m, "i", 1).unwrap();
        for b in &ms.kernel {
            for o in b {
                assert!(o.iter_offset >= 0 && o.iter_offset < ms.stages);
            }
        }
    }
}
