//! Dependence analysis on IR blocks — used by both schedulers.
//!
//! Intra-iteration edges drive list scheduling; cross-iteration edges
//! (register flows into the next iteration, loop-carried memory
//! dependences via the address linear forms) drive the modulo scheduler's
//! RecMII. Register anti/output dependences across iterations are ignored
//! by the modulo scheduler — the machine model gives it rotating registers
//! (as on the paper's IA-64, Fig. 13), with the register cost accounted by
//! modulo variable expansion in the register-pressure estimate.

#![allow(clippy::needless_range_loop)] // index loops mirror the papers' pseudo-code
use crate::ir::{Op, OpClass};
use crate::mach::MachineDesc;
use slc_analysis::LinForm;

/// A dependence edge between ops of one loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrEdge {
    /// source op index
    pub from: usize,
    /// sink op index
    pub to: usize,
    /// minimum cycles between issue of source and sink
    pub lat: u32,
    /// iteration distance (0 = same iteration)
    pub dist: i64,
}

/// Memory disambiguation verdict for two address forms evaluated in the
/// *same* iteration.
fn same_iter_alias(a: Option<&LinForm>, b: Option<&LinForm>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => {
            let d = x.sub(y);
            if d.is_const() {
                d.konst == 0
            } else {
                true // symbolic difference: conservative
            }
        }
        _ => true, // unknown address: conservative
    }
}

/// Intra-iteration dependence edges of a block (distance 0 throughout).
pub fn intra_deps(ops: &[Op], m: &MachineDesc) -> Vec<IrEdge> {
    let mut edges = Vec::new();
    let n = ops.len();
    // register dependences
    for v in 0..n {
        for r in ops[v].srcs() {
            // latest def before v → flow
            if let Some(u) = (0..v).rev().find(|&u| ops[u].dst() == Some(r)) {
                edges.push(IrEdge {
                    from: u,
                    to: v,
                    lat: m.latency_of(ops[u].class()),
                    dist: 0,
                });
            }
            // next def after v → anti (same cycle allowed: reads at issue)
            if let Some(u) = (v + 1..n).find(|&u| ops[u].dst() == Some(r)) {
                edges.push(IrEdge {
                    from: v,
                    to: u,
                    lat: 0,
                    dist: 0,
                });
            }
        }
        if let Some(r) = ops[v].dst() {
            // next def of same reg → output (must stay ordered)
            if let Some(u) = (v + 1..n).find(|&u| ops[u].dst() == Some(r)) {
                edges.push(IrEdge {
                    from: v,
                    to: u,
                    lat: 1,
                    dist: 0,
                });
            }
        }
    }
    // memory dependences
    for u in 0..n {
        let Some((arr_u, addr_u, w_u)) = ops[u].mem() else {
            continue;
        };
        for v in u + 1..n {
            let Some((arr_v, addr_v, w_v)) = ops[v].mem() else {
                continue;
            };
            if arr_u != arr_v || (!w_u && !w_v) {
                continue;
            }
            if !same_iter_alias(addr_u, addr_v) {
                continue;
            }
            let lat = match (w_u, w_v) {
                (true, false) => m.latency_of(OpClass::Mem), // store→load forward
                (false, true) => 0,                          // load before store, same cycle ok
                (true, true) => 1,                           // store order
                _ => unreachable!(),
            };
            edges.push(IrEdge {
                from: u,
                to: v,
                lat,
                dist: 0,
            });
        }
    }
    // branch goes last
    if let Some(b) = ops.iter().position(|o| o.class() == OpClass::Branch) {
        for u in 0..n {
            if u != b {
                edges.push(IrEdge {
                    from: u,
                    to: b,
                    lat: 0,
                    dist: 0,
                });
            }
        }
    }
    edges
}

/// Cross-iteration dependences for modulo scheduling: register flows whose
/// value crosses the back edge, and loop-carried memory dependences derived
/// from address linear forms over `var` (step-normalized). Returns `None`
/// when a memory pair cannot be disambiguated across iterations — the
/// modulo scheduler then refuses the loop (like production compilers).
pub fn cross_deps(ops: &[Op], m: &MachineDesc, var: &str, step: i64) -> Option<Vec<IrEdge>> {
    let mut edges = Vec::new();
    let n = ops.len();
    // register flow into the next iteration: use at v whose reaching def is
    // at u >= v (no def earlier in the block)
    for v in 0..n {
        for r in ops[v].srcs() {
            if (0..v).any(|u| ops[u].dst() == Some(r)) {
                continue; // same-iteration def reaches it
            }
            if let Some(u) = (v..n).rev().find(|&u| ops[u].dst() == Some(r)) {
                edges.push(IrEdge {
                    from: u,
                    to: v,
                    lat: m.latency_of(ops[u].class()),
                    dist: 1,
                });
            }
        }
    }
    // loop-carried memory dependences
    for u in 0..n {
        let Some((arr_u, addr_u, w_u)) = ops[u].mem() else {
            continue;
        };
        for v in 0..n {
            let Some((arr_v, addr_v, w_v)) = ops[v].mem() else {
                continue;
            };
            if arr_u != arr_v || (!w_u && !w_v) {
                continue;
            }
            let (Some(la), Some(lb)) = (addr_u, addr_v) else {
                return None; // unknown address: cannot modulo schedule
            };
            let (ca, ra) = la.split_var(var);
            let (cb, rb) = lb.split_var(var);
            if ca != cb {
                return None;
            }
            if ca == 0 {
                let d = ra.sub(&rb);
                if d.is_const() && d.konst != 0 {
                    continue; // distinct fixed addresses
                }
                if d.is_const() {
                    // same fixed address every iteration: serialize fully
                    if v > u || (v == u && w_u) {
                        edges.push(IrEdge {
                            from: u,
                            to: v,
                            lat: 1,
                            dist: 1,
                        });
                    }
                    continue;
                }
                return None;
            }
            let diff = ra.sub(&rb);
            if !diff.is_const() {
                return None;
            }
            // u@i aliases v@(i+d): ca*i + ra == ca*(i+d)*…  → d = (ra-rb)/(ca*step)
            let denom = ca * step;
            if diff.konst % denom != 0 {
                continue;
            }
            let d = diff.konst / denom;
            // d == 0 is intra-iteration (handled by `intra_deps`); d < 0 is
            // covered when the loop visits the symmetric pair (v, u).
            if d > 0 {
                edges.push(IrEdge {
                    from: u,
                    to: v,
                    lat: 1,
                    dist: d,
                });
            }
        }
    }
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinKind, OpKind, Operand};

    fn load(dst: u32, arr: &str, lin: LinForm) -> Op {
        Op::new(OpKind::Load {
            dst,
            array: arr.into(),
            addr: Some(lin),
        })
    }

    fn store(src: u32, arr: &str, lin: LinForm) -> Op {
        Op::new(OpKind::Store {
            src: Operand::Reg(src),
            array: arr.into(),
            addr: Some(lin),
        })
    }

    fn lin(c: i64, k: i64) -> LinForm {
        LinForm::var("i").scale(c).add(&LinForm::constant(k))
    }

    #[test]
    fn flow_and_anti_regs() {
        let m = MachineDesc::default();
        let ops = vec![
            load(0, "A", lin(1, 0)),
            Op::new(OpKind::Bin {
                op: BinKind::Add,
                fp: true,
                dst: 1,
                a: Operand::Reg(0),
                b: Operand::ImmF(1.0),
            }),
            store(1, "B", lin(1, 0)),
        ];
        let e = intra_deps(&ops, &m);
        // flow 0→1 with Mem latency, flow 1→2 with FpAdd latency
        assert!(e.iter().any(|x| x.from == 0 && x.to == 1 && x.lat == 2));
        assert!(e.iter().any(|x| x.from == 1 && x.to == 2 && x.lat == 3));
    }

    #[test]
    fn mem_disambiguation_by_offset() {
        let m = MachineDesc::default();
        // store A[i], load A[i+1]: provably distinct this iteration
        let ops = vec![store(0, "A", lin(1, 0)), load(1, "A", lin(1, 1))];
        let e = intra_deps(&ops, &m);
        assert!(!e.iter().any(|x| x.from == 0 && x.to == 1 && x.lat > 0));
        // same offset: dependent
        let ops = vec![store(0, "A", lin(1, 0)), load(1, "A", lin(1, 0))];
        let e = intra_deps(&ops, &m);
        assert!(e.iter().any(|x| x.from == 0 && x.to == 1 && x.lat == 2));
    }

    #[test]
    fn cross_iteration_mem_distance() {
        let m = MachineDesc::default();
        // store A[i]; load A[i-1] → next iteration reads this store: dist 1
        let ops = vec![store(0, "A", lin(1, 0)), load(1, "A", lin(1, -1))];
        let e = cross_deps(&ops, &m, "i", 1).unwrap();
        assert!(
            e.iter().any(|x| x.from == 0 && x.to == 1 && x.dist == 1),
            "{e:?}"
        );
    }

    #[test]
    fn unknown_address_blocks_ims() {
        let m = MachineDesc::default();
        let ops = vec![
            Op::new(OpKind::Store {
                src: Operand::Reg(0),
                array: "A".into(),
                addr: None,
            }),
            load(1, "A", lin(1, 0)),
        ];
        assert!(cross_deps(&ops, &m, "i", 1).is_none());
    }

    #[test]
    fn accumulator_cross_flow() {
        let m = MachineDesc::default();
        // s(reg 5) += A[i]: load; add dst=5 a=5; — use of 5 before def → dist-1 flow
        let ops = vec![
            load(0, "A", lin(1, 0)),
            Op::new(OpKind::Bin {
                op: BinKind::Add,
                fp: true,
                dst: 5,
                a: Operand::Reg(5),
                b: Operand::Reg(0),
            }),
        ];
        let e = cross_deps(&ops, &m, "i", 1).unwrap();
        assert!(e.iter().any(|x| x.from == 1 && x.to == 1 && x.dist == 1));
    }
}
