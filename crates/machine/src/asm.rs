//! Assembly-style rendering of scheduled IR — the workspace's equivalent of
//! the paper's Figure 2 ("machine level MS") listings.
//!
//! One line per cycle; ops in a bundle are joined with ` | `. Memory
//! operands print their symbolic address form; kernel ops from later
//! pipeline stages show their iteration offset as `@+k`.

use crate::ir::{BinKind, Bundle, Op, OpKind, Operand};
use slc_analysis::LinForm;
use std::fmt::Write;

fn operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{r}"),
        Operand::ImmI(v) => format!("#{v}"),
        Operand::ImmF(v) => format!("#{v}"),
    }
}

fn linform(l: &LinForm) -> String {
    let mut parts = Vec::new();
    for (v, c) in &l.terms {
        match c {
            1 => parts.push(v.clone()),
            -1 => parts.push(format!("-{v}")),
            c => parts.push(format!("{c}*{v}")),
        }
    }
    if l.konst != 0 || parts.is_empty() {
        parts.push(l.konst.to_string());
    }
    parts.join("+").replace("+-", "-")
}

fn bin_kind(k: &BinKind) -> String {
    match k {
        BinKind::Add => "add".into(),
        BinKind::Sub => "sub".into(),
        BinKind::Mul => "mul".into(),
        BinKind::Div => "div".into(),
        BinKind::Mod => "rem".into(),
        BinKind::Cmp(c) => format!("cmp.{c}"),
        BinKind::And => "and".into(),
        BinKind::Or => "or".into(),
        BinKind::Not => "not".into(),
    }
}

/// Render one op.
pub fn op_to_string(op: &Op) -> String {
    let body = match &op.kind {
        OpKind::Load { dst, array, addr } => match addr {
            Some(l) => format!("ld    r{dst} = {array}[{}]", linform(l)),
            None => format!("ld    r{dst} = {array}[?]"),
        },
        OpKind::Store { src, array, addr } => match addr {
            Some(l) => format!("st    {array}[{}] = {}", linform(l), operand(src)),
            None => format!("st    {array}[?] = {}", operand(src)),
        },
        OpKind::Bin {
            op: k,
            fp,
            dst,
            a,
            b,
        } => {
            let suffix = if *fp { ".f" } else { "" };
            format!(
                "{}{suffix} r{dst} = {}, {}",
                bin_kind(k),
                operand(a),
                operand(b)
            )
        }
        OpKind::Mov { dst, src } => format!("mov   r{dst} = {}", operand(src)),
        OpKind::Intrinsic {
            name, dst, args, ..
        } => {
            let args: Vec<_> = args.iter().map(operand).collect();
            format!("{name}  r{dst} = {}", args.join(", "))
        }
        OpKind::Branch => "br    loop".to_string(),
    };
    let mut out = String::new();
    if let Some((p, sense)) = op.pred {
        let neg = if sense { "" } else { "!" };
        let _ = write!(out, "({neg}r{p}) ");
    }
    out.push_str(&body);
    if op.iter_offset != 0 {
        let _ = write!(out, " @+{}", op.iter_offset);
    }
    out
}

/// Render a bundle schedule, one cycle per line (`cyc: op | op | …`).
/// Empty bundles print as stall cycles.
pub fn bundles_to_string(bundles: &[Bundle]) -> String {
    let mut out = String::new();
    for (c, b) in bundles.iter().enumerate() {
        if b.is_empty() {
            let _ = writeln!(out, "{c:>4}:  <stall>");
        } else {
            let ops: Vec<_> = b.iter().map(op_to_string).collect();
            let _ = writeln!(out, "{c:>4}:  {}", ops.join("  |  "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Lir;
    use crate::listsched::list_schedule;
    use crate::lower::lower_program;
    use crate::mach::MachineDesc;
    use slc_ast::parse_program;

    fn innermost_ops(src: &str) -> Vec<Op> {
        let lir = lower_program(&parse_program(src).unwrap()).unwrap();
        lir.items
            .iter()
            .find_map(|it| match it {
                Lir::Loop(l) => l.body.iter().find_map(|b| match b {
                    Lir::Block(ops) => Some(ops.clone()),
                    _ => None,
                }),
                _ => None,
            })
            .unwrap()
    }

    #[test]
    fn renders_schedule() {
        let ops = innermost_ops(
            "float A[16]; float B[16]; int i; for (i = 0; i < 16; i++) B[i] = A[i] * 2.0;",
        );
        let s = list_schedule(&ops, &MachineDesc::default());
        let asm = bundles_to_string(&s.bundles);
        assert!(asm.contains("ld "), "{asm}");
        assert!(asm.contains("mul.f"), "{asm}");
        assert!(asm.contains("st "), "{asm}");
        assert!(asm.contains("br "), "{asm}");
        assert!(asm.contains("A[i]"), "{asm}");
    }

    #[test]
    fn renders_predication_and_offsets() {
        let mut op = Op::new(OpKind::Mov {
            dst: 3,
            src: Operand::ImmI(7),
        });
        op.pred = Some((9, false));
        op.iter_offset = 2;
        let s = op_to_string(&op);
        assert_eq!(s, "(!r9) mov   r3 = #7 @+2");
    }

    #[test]
    fn renders_linform_addresses() {
        let ops = innermost_ops("float M[4][8]; int i; for (i = 0; i < 4; i++) M[i][3] = 0.0;");
        let s = list_schedule(&ops, &MachineDesc::default());
        let asm = bundles_to_string(&s.bundles);
        assert!(asm.contains("M[8*i+3]"), "{asm}");
    }
}
