//! Three-address IR for the final-compiler substrate.
//!
//! Lowered code is branch-free inside blocks (source `if`s become predicated
//! ops). Memory operations carry a symbolic **address linear form** over the
//! enclosing loop variables, which serves two purposes:
//!
//! * the schedulers (list and modulo) use it for memory disambiguation —
//!   exactly the "dependencies transferred from the front end" the paper
//!   credits a good compiler with (§7);
//! * the trace-based cycle simulator evaluates it against the current loop
//!   indices to produce concrete addresses for the cache model, without
//!   needing value semantics (values are checked separately by the AST
//!   interpreter).

use slc_analysis::LinForm;

/// Virtual register id.
pub type VReg = u32;

/// Operand of an operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Virtual register.
    Reg(VReg),
    /// Integer immediate.
    ImmI(i64),
    /// Float immediate.
    ImmF(f64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(&self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

/// Functional-unit class of an operation (resource classes of the machine
/// model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Integer ALU (add/sub/logic/compare/address arithmetic).
    IntAlu,
    /// Integer multiply/divide.
    IntMul,
    /// Floating add/sub/compare.
    FpAdd,
    /// Floating multiply.
    FpMul,
    /// Floating divide (long latency, usually unpipelined).
    FpDiv,
    /// Load/store unit.
    Mem,
    /// Branch unit (loop back-edges).
    Branch,
}

/// All classes, for iteration.
pub const ALL_CLASSES: [OpClass; 7] = [
    OpClass::IntAlu,
    OpClass::IntMul,
    OpClass::FpAdd,
    OpClass::FpMul,
    OpClass::FpDiv,
    OpClass::Mem,
    OpClass::Branch,
];

/// Arithmetic operator of a [`OpKind::Bin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// addition
    Add,
    /// subtraction
    Sub,
    /// multiplication
    Mul,
    /// division
    Div,
    /// remainder
    Mod,
    /// comparison (result 0 or 1)
    Cmp(slc_ast::CmpOp),
    /// logical and (both operands truthy)
    And,
    /// logical or
    Or,
    /// logical not of the left operand (right ignored)
    Not,
}

impl BinKind {
    /// True for the compare/logic family (all integer-ALU class).
    pub fn is_logic(&self) -> bool {
        matches!(
            self,
            BinKind::Cmp(_) | BinKind::And | BinKind::Or | BinKind::Not
        )
    }
}

/// Operation payload.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// `dst = array[addr]`.
    Load {
        /// destination register
        dst: VReg,
        /// array (memory space) name
        array: String,
        /// symbolic linear address (element index) when affine
        addr: Option<LinForm>,
    },
    /// `array[addr] = src`.
    Store {
        /// stored value
        src: Operand,
        /// array name
        array: String,
        /// symbolic linear address when affine
        addr: Option<LinForm>,
    },
    /// `dst = a <op> b`.
    Bin {
        /// operator
        op: BinKind,
        /// float (true) or integer (false) flavour
        fp: bool,
        /// destination
        dst: VReg,
        /// left operand
        a: Operand,
        /// right operand
        b: Operand,
    },
    /// `dst = src` (register move / immediate materialization).
    Mov {
        /// destination
        dst: VReg,
        /// source
        src: Operand,
    },
    /// Pure math intrinsic (`abs`, `sqrt`, `min`, …): semantically faithful,
    /// scheduled as a long-latency FP op.
    Intrinsic {
        /// intrinsic name
        name: String,
        /// destination
        dst: VReg,
        /// arguments
        args: Vec<Operand>,
        /// heavy (sqrt/exp → FpDiv class) vs light (abs/min/max → FpAdd)
        heavy: bool,
    },
    /// Loop back-edge bookkeeping (modelled for issue pressure).
    Branch,
}

/// One IR operation, optionally predicated (`(pred, sense)`: executes when
/// the predicate register's truthiness equals `sense`).
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// payload
    pub kind: OpKind,
    /// optional predicate guard
    pub pred: Option<(VReg, bool)>,
    /// iteration offset relative to the loop's nominal iteration — set by
    /// the modulo scheduler for kernel ops drawn from later iterations, used
    /// by the cycle simulator for address computation
    pub iter_offset: i64,
}

impl Op {
    /// Unpredicated op with zero iteration offset.
    pub fn new(kind: OpKind) -> Op {
        Op {
            kind,
            pred: None,
            iter_offset: 0,
        }
    }

    /// The functional-unit class.
    pub fn class(&self) -> OpClass {
        match &self.kind {
            OpKind::Load { .. } | OpKind::Store { .. } => OpClass::Mem,
            OpKind::Bin { op, fp, .. } => match (op, fp) {
                (BinKind::Mul, true) => OpClass::FpMul,
                (BinKind::Div | BinKind::Mod, true) => OpClass::FpDiv,
                (_, true) => OpClass::FpAdd, // add/sub/compare/logic
                (BinKind::Mul | BinKind::Div | BinKind::Mod, false) => OpClass::IntMul,
                (_, false) => OpClass::IntAlu,
            },
            OpKind::Mov { .. } => OpClass::IntAlu,
            OpKind::Intrinsic { heavy, .. } => {
                if *heavy {
                    OpClass::FpDiv
                } else {
                    OpClass::FpAdd
                }
            }
            OpKind::Branch => OpClass::Branch,
        }
    }

    /// Destination register, if any.
    pub fn dst(&self) -> Option<VReg> {
        match &self.kind {
            OpKind::Load { dst, .. }
            | OpKind::Bin { dst, .. }
            | OpKind::Mov { dst, .. }
            | OpKind::Intrinsic { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Source registers (including the predicate guard).
    pub fn srcs(&self) -> Vec<VReg> {
        let mut out = Vec::new();
        self.visit_srcs(|r| out.push(r));
        out
    }

    /// Visit source registers (including the predicate guard) without
    /// allocating — the cycle simulator calls this once per op per trip.
    pub fn visit_srcs(&self, mut f: impl FnMut(VReg)) {
        let mut push = |o: &Operand| {
            if let Operand::Reg(r) = o {
                f(*r);
            }
        };
        match &self.kind {
            OpKind::Load { .. } => {}
            OpKind::Store { src, .. } => push(src),
            OpKind::Bin { a, b, .. } => {
                push(a);
                push(b);
            }
            OpKind::Mov { src, .. } => push(src),
            OpKind::Intrinsic { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            OpKind::Branch => {}
        }
        if let Some((p, _)) = self.pred {
            f(p);
        }
    }

    /// Memory access info: (array, address linform, is_store).
    pub fn mem(&self) -> Option<(&str, Option<&LinForm>, bool)> {
        match &self.kind {
            OpKind::Load { array, addr, .. } => Some((array, addr.as_ref(), false)),
            OpKind::Store { array, addr, .. } => Some((array, addr.as_ref(), true)),
            _ => None,
        }
    }
}

/// A VLIW bundle / issue group: ops issued in the same cycle.
pub type Bundle = Vec<Op>;

/// Structured lowered program.
#[derive(Debug, Clone, PartialEq)]
pub enum Lir {
    /// Straight-line operations.
    Block(Vec<Op>),
    /// A counted loop.
    Loop(LirLoop),
}

/// A counted loop in the IR. Bounds are constant (the lowering rejects
/// symbolic bounds — every workload in the suite has constant trip counts).
#[derive(Debug, Clone, PartialEq)]
pub struct LirLoop {
    /// loop variable name (for address linforms)
    pub var: String,
    /// first index value
    pub init: i64,
    /// additive step
    pub step: i64,
    /// iteration count
    pub trips: i64,
    /// loop body
    pub body: Vec<Lir>,
}

/// A whole lowered program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LirProgram {
    /// top-level items
    pub items: Vec<Lir>,
    /// number of virtual registers used (int and fp pooled; the register
    /// allocator splits by class)
    pub n_regs: u32,
    /// declared array sizes (elements), for address-space layout
    pub arrays: Vec<(String, usize)>,
    /// scalar-variable → register assignment (for seeding/reading state in
    /// the IR value interpreter)
    pub scalar_regs: Vec<(String, VReg)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classes() {
        let fp_mul = Op::new(OpKind::Bin {
            op: BinKind::Mul,
            fp: true,
            dst: 0,
            a: Operand::Reg(1),
            b: Operand::Reg(2),
        });
        assert_eq!(fp_mul.class(), OpClass::FpMul);
        let int_add = Op::new(OpKind::Bin {
            op: BinKind::Add,
            fp: false,
            dst: 0,
            a: Operand::Reg(1),
            b: Operand::ImmI(1),
        });
        assert_eq!(int_add.class(), OpClass::IntAlu);
        let ld = Op::new(OpKind::Load {
            dst: 3,
            array: "A".into(),
            addr: None,
        });
        assert_eq!(ld.class(), OpClass::Mem);
    }

    #[test]
    fn srcs_include_predicate() {
        let mut st = Op::new(OpKind::Store {
            src: Operand::Reg(5),
            array: "A".into(),
            addr: None,
        });
        st.pred = Some((7, true));
        let s = st.srcs();
        assert!(s.contains(&5) && s.contains(&7));
        assert_eq!(st.dst(), None);
    }
}
