//! Parametric machine descriptions.
//!
//! One structure covers the paper's four targets: a wide in-order VLIW
//! (Itanium II), a narrow in-order superscalar (Pentium), a wider superscalar
//! (Power4) and a single-issue scalar core (ARM7TDMI). The schedulers and
//! the cycle simulator read everything from here — nothing is hard-coded to
//! a target.

use crate::ir::{OpClass, ALL_CLASSES};

/// How the machine finds instruction-level parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueModel {
    /// Compiler-scheduled bundles execute as given (VLIW / EPIC).
    StaticVliw,
    /// Hardware issues the linear op stream in order, up to `issue_width`
    /// per cycle, stalling on unavailable operands (in-order superscalar).
    DynamicInOrder,
}

/// Set-associative L1 data-cache parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// total size in bytes
    pub size: usize,
    /// line size in bytes
    pub line: usize,
    /// associativity (LRU replacement)
    pub ways: usize,
    /// extra stall cycles on a miss (hit cost is the Mem op latency)
    pub miss_penalty: u32,
}

/// A machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDesc {
    /// human-readable name
    pub name: String,
    /// issue model
    pub issue: IssueModel,
    /// maximum operations issued per cycle
    pub issue_width: usize,
    /// functional-unit count per class
    pub units: [usize; 7],
    /// result latency per class (cycles until a consumer may issue)
    pub latency: [u32; 7],
    /// architected integer registers available to the allocator
    pub int_regs: usize,
    /// architected float registers
    pub fp_regs: usize,
    /// L1 data cache
    pub cache: CacheConfig,
    /// element size in bytes for address → byte conversion
    pub elem_bytes: usize,
    /// extra stall cycles for a spill (per spilled access, on top of the
    /// Mem latency)
    pub spill_penalty: u32,
}

impl MachineDesc {
    fn class_index(c: OpClass) -> usize {
        ALL_CLASSES.iter().position(|&x| x == c).unwrap()
    }

    /// Functional units available for a class.
    pub fn units_of(&self, c: OpClass) -> usize {
        self.units[Self::class_index(c)]
    }

    /// Result latency of a class.
    pub fn latency_of(&self, c: OpClass) -> u32 {
        self.latency[Self::class_index(c)]
    }

    /// Set the unit count of a class (builder helper).
    pub fn with_units(mut self, c: OpClass, n: usize) -> Self {
        self.units[Self::class_index(c)] = n;
        self
    }

    /// Set the latency of a class (builder helper).
    pub fn with_latency(mut self, c: OpClass, l: u32) -> Self {
        self.latency[Self::class_index(c)] = l;
        self
    }

    /// Stable content fingerprint of the machine description, part of the
    /// cache key for memoized schedules and simulations in the batch
    /// experiment engine. Exhaustive destructuring keeps this in sync with
    /// the struct definition.
    pub fn fingerprint(&self) -> u64 {
        let MachineDesc {
            name,
            issue,
            issue_width,
            units,
            latency,
            int_regs,
            fp_regs,
            cache,
            elem_bytes,
            spill_penalty,
        } = self;
        let mut h = slc_analysis::Fnv64::new();
        h.write_str(name);
        h.write_u64(match issue {
            IssueModel::StaticVliw => 0,
            IssueModel::DynamicInOrder => 1,
        });
        h.write_usize(*issue_width);
        for u in units {
            h.write_usize(*u);
        }
        for l in latency {
            h.write_u64(*l as u64);
        }
        h.write_usize(*int_regs).write_usize(*fp_regs);
        h.write_usize(cache.size)
            .write_usize(cache.line)
            .write_usize(cache.ways)
            .write_u64(cache.miss_penalty as u64);
        h.write_usize(*elem_bytes).write_u64(*spill_penalty as u64);
        h.finish()
    }
}

impl Default for MachineDesc {
    /// A generic 4-issue VLIW used by unit tests.
    fn default() -> Self {
        MachineDesc {
            name: "generic-vliw4".into(),
            issue: IssueModel::StaticVliw,
            issue_width: 4,
            //        IntAlu IntMul FpAdd FpMul FpDiv Mem Branch
            units: [2, 1, 2, 2, 1, 2, 1],
            latency: [1, 3, 3, 4, 12, 2, 1],
            int_regs: 32,
            fp_regs: 32,
            cache: CacheConfig {
                size: 16 * 1024,
                line: 64,
                ways: 4,
                miss_penalty: 12,
            },
            elem_bytes: 8,
            spill_penalty: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers() {
        let m = MachineDesc::default()
            .with_units(OpClass::Mem, 3)
            .with_latency(OpClass::FpDiv, 20);
        assert_eq!(m.units_of(OpClass::Mem), 3);
        assert_eq!(m.latency_of(OpClass::FpDiv), 20);
        assert_eq!(m.units_of(OpClass::Branch), 1);
    }
}
