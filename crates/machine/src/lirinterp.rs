//! Value-level interpreter for lowered IR — the differential oracle for the
//! lowering stage.
//!
//! The trace-based cycle simulator (in `slc-sim`) deliberately never
//! computes data values; this interpreter does, so the workspace can check
//! that *lowering itself* preserves semantics: running a program through
//! `lower_program` + this interpreter must produce the same final array and
//! scalar state as the AST reference interpreter. The differential tests
//! live in the workspace `tests/` directory.
//!
//! Execution model: ops run in program order (scheduling does not change
//! values — only timing — so the oracle checks the unscheduled IR);
//! predicated ops are skipped when their guard fails; memory addresses come
//! from the symbolic linear forms evaluated against the live loop indices.
//! Programs whose memory ops carry no linear form (non-affine subscripts)
//! cannot be value-executed and report [`LirExecError::UnknownAddress`].

use crate::ir::{BinKind, Lir, LirLoop, LirProgram, Op, OpKind, Operand, VReg};
use std::collections::HashMap;

/// Runtime value of a register (dynamically typed like the AST oracle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RVal {
    /// integer
    I(i64),
    /// float
    F(f64),
}

impl RVal {
    /// As f64 for mixed arithmetic.
    pub fn as_f64(self) -> f64 {
        match self {
            RVal::I(v) => v as f64,
            RVal::F(v) => v,
        }
    }

    /// Truthiness.
    pub fn truthy(self) -> bool {
        match self {
            RVal::I(v) => v != 0,
            RVal::F(v) => v != 0.0,
        }
    }
}

/// Errors from IR execution.
#[derive(Debug, Clone, PartialEq)]
pub enum LirExecError {
    /// A memory op has no symbolic address (non-affine subscript).
    UnknownAddress(String),
    /// Address evaluated outside the array.
    OutOfBounds {
        /// array name
        array: String,
        /// evaluated element index
        index: i64,
    },
    /// Integer division by zero.
    DivByZero,
}

impl std::fmt::Display for LirExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LirExecError::UnknownAddress(a) => write!(f, "non-affine address into {a}"),
            LirExecError::OutOfBounds { array, index } => {
                write!(f, "index {index} out of bounds in {array}")
            }
            LirExecError::DivByZero => write!(f, "division by zero"),
        }
    }
}

/// Final machine state after IR execution.
#[derive(Debug, Clone, Default)]
pub struct LirState {
    /// register file
    pub regs: HashMap<VReg, RVal>,
    /// array contents (row-major, f64 storage; integer arrays hold integral
    /// values)
    pub arrays: HashMap<String, Vec<f64>>,
    /// loop-variable environment (for address evaluation)
    pub env: HashMap<String, i64>,
    /// scalar-name → register map, for address terms that reference
    /// non-loop scalars (e.g. `a[i][k]` with `i` set at runtime)
    pub scalar_regs: HashMap<String, VReg>,
}

impl LirState {
    fn operand(&self, o: &Operand) -> RVal {
        match o {
            Operand::Reg(r) => self.regs.get(r).copied().unwrap_or(RVal::F(0.0)),
            Operand::ImmI(v) => RVal::I(*v),
            Operand::ImmF(v) => RVal::F(*v),
        }
    }

    fn addr(&self, op: &Op) -> Result<(String, i64), LirExecError> {
        let (array, lin, _) = op.mem().expect("mem op");
        let Some(lin) = lin else {
            return Err(LirExecError::UnknownAddress(array.to_string()));
        };
        let mut v = lin.konst;
        for (var, c) in &lin.terms {
            let val = match self.env.get(var) {
                Some(x) => *x,
                None => match self.scalar_regs.get(var).and_then(|r| self.regs.get(r)) {
                    Some(RVal::I(x)) => *x,
                    Some(RVal::F(x)) if x.fract() == 0.0 => *x as i64,
                    _ => return Err(LirExecError::UnknownAddress(array.to_string())),
                },
            };
            v += c * val;
        }
        Ok((array.to_string(), v))
    }

    fn exec_op(&mut self, op: &Op) -> Result<(), LirExecError> {
        if let Some((p, sense)) = op.pred {
            let pv = self.regs.get(&p).copied().unwrap_or(RVal::I(0));
            if pv.truthy() != sense {
                return Ok(());
            }
        }
        match &op.kind {
            OpKind::Load { dst, .. } => {
                let (array, idx) = self.addr(op)?;
                let arr = self.arrays.entry(array.clone()).or_default();
                if idx < 0 || idx as usize >= arr.len() {
                    return Err(LirExecError::OutOfBounds { array, index: idx });
                }
                let v = arr[idx as usize];
                self.regs.insert(*dst, RVal::F(v));
            }
            OpKind::Store { src, .. } => {
                let v = self.operand(src).as_f64();
                let (array, idx) = self.addr(op)?;
                let arr = self.arrays.entry(array.clone()).or_default();
                if idx < 0 || idx as usize >= arr.len() {
                    return Err(LirExecError::OutOfBounds { array, index: idx });
                }
                arr[idx as usize] = v;
            }
            OpKind::Bin {
                op: k,
                fp,
                dst,
                a,
                b,
            } => {
                let (va, vb) = (self.operand(a), self.operand(b));
                let out = exec_bin(*k, *fp, va, vb)?;
                self.regs.insert(*dst, out);
            }
            OpKind::Mov { dst, src } => {
                let v = self.operand(src);
                self.regs.insert(*dst, v);
            }
            OpKind::Intrinsic {
                name, dst, args, ..
            } => {
                let f = |k: usize| args.get(k).map(|a| self.operand(a).as_f64()).unwrap_or(0.0);
                let out = match name.as_str() {
                    "abs" => f(0).abs(),
                    "sqrt" => f(0).sqrt(),
                    "exp" => f(0).exp(),
                    "sign" => f(0).signum(),
                    "min" => f(0).min(f(1)),
                    "max" => f(0).max(f(1)),
                    _ => 0.0,
                };
                self.regs.insert(*dst, RVal::F(out));
            }
            OpKind::Branch => {}
        }
        Ok(())
    }

    fn exec_loop(&mut self, l: &LirLoop) -> Result<(), LirExecError> {
        for t in 0..l.trips {
            self.env.insert(l.var.clone(), l.init + t * l.step);
            for item in &l.body {
                self.exec_item(item)?;
            }
        }
        // loop variable register already updated by the lowered control ops
        self.env.insert(l.var.clone(), l.init + l.trips * l.step);
        Ok(())
    }

    fn exec_item(&mut self, item: &Lir) -> Result<(), LirExecError> {
        match item {
            Lir::Block(ops) => {
                for op in ops {
                    self.exec_op(op)?;
                }
                Ok(())
            }
            Lir::Loop(l) => self.exec_loop(l),
        }
    }
}

fn exec_bin(k: BinKind, fp: bool, a: RVal, b: RVal) -> Result<RVal, LirExecError> {
    use RVal::*;
    // integer flavour only when both operands are integers and fp is false
    let ints = matches!((a, b), (I(_), I(_))) && !fp;
    Ok(match k {
        BinKind::Add => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    I(x.wrapping_add(y))
                } else {
                    unreachable!()
                }
            } else {
                F(a.as_f64() + b.as_f64())
            }
        }
        BinKind::Sub => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    I(x.wrapping_sub(y))
                } else {
                    unreachable!()
                }
            } else {
                F(a.as_f64() - b.as_f64())
            }
        }
        BinKind::Mul => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    I(x.wrapping_mul(y))
                } else {
                    unreachable!()
                }
            } else {
                F(a.as_f64() * b.as_f64())
            }
        }
        BinKind::Div => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    if y == 0 {
                        return Err(LirExecError::DivByZero);
                    }
                    I(x.wrapping_div(y))
                } else {
                    unreachable!()
                }
            } else {
                F(a.as_f64() / b.as_f64())
            }
        }
        BinKind::Mod => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    if y == 0 {
                        return Err(LirExecError::DivByZero);
                    }
                    I(x.wrapping_rem(y))
                } else {
                    unreachable!()
                }
            } else {
                let d = b.as_f64();
                if d == 0.0 {
                    return Err(LirExecError::DivByZero);
                }
                F(a.as_f64() % d)
            }
        }
        BinKind::Cmp(c) => I(c.eval(a.as_f64(), b.as_f64()) as i64),
        BinKind::And => I((a.truthy() && b.truthy()) as i64),
        BinKind::Or => I((a.truthy() || b.truthy()) as i64),
        BinKind::Not => I(!a.truthy() as i64),
    })
}

/// Execute a lowered program from an initial array state (row-major f64 per
/// array) and initial register values. Returns the final state.
pub fn exec_lir(
    prog: &LirProgram,
    init_arrays: HashMap<String, Vec<f64>>,
    init_regs: HashMap<VReg, RVal>,
) -> Result<LirState, LirExecError> {
    let mut st = LirState {
        regs: init_regs,
        arrays: init_arrays,
        env: HashMap::new(),
        scalar_regs: prog.scalar_regs.iter().cloned().collect(),
    };
    // ensure declared arrays exist
    for (name, len) in &prog.arrays {
        st.arrays.entry(name.clone()).or_insert(vec![0.0; *len]);
    }
    for item in &prog.items {
        st.exec_item(item)?;
    }
    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use slc_ast::parse_program;

    #[test]
    fn simple_loop_values() {
        let p = parse_program(
            "float A[8]; float B[8]; int i;\n\
             for (i = 0; i < 8; i++) B[i] = A[i] * 2.0 + 1.0;",
        )
        .unwrap();
        let lir = lower_program(&p).unwrap();
        let mut arrays = HashMap::new();
        arrays.insert("A".to_string(), (0..8).map(|k| k as f64).collect());
        let st = exec_lir(&lir, arrays, HashMap::new()).unwrap();
        let b = &st.arrays["B"];
        for (k, v) in b.iter().enumerate() {
            assert_eq!(*v, k as f64 * 2.0 + 1.0);
        }
    }

    #[test]
    fn predicated_store_skipped() {
        let p = parse_program(
            "float A[4]; int c; int i;\n\
             c = 0;\n\
             for (i = 0; i < 4; i++) if (c) A[i] = 9.0;",
        )
        .unwrap();
        let lir = lower_program(&p).unwrap();
        let st = exec_lir(&lir, HashMap::new(), HashMap::new()).unwrap();
        assert!(st.arrays["A"].iter().all(|v| *v == 0.0));
    }

    #[test]
    fn oob_detected() {
        let p = parse_program("float A[4]; int i; for (i = 0; i < 6; i++) A[i] = 1.0;").unwrap();
        let lir = lower_program(&p).unwrap();
        assert!(matches!(
            exec_lir(&lir, HashMap::new(), HashMap::new()),
            Err(LirExecError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn accumulator_value() {
        let p = parse_program(
            "float A[5]; float s; int i;\n\
             for (i = 0; i < 5; i++) s += A[i];",
        )
        .unwrap();
        let lir = lower_program(&p).unwrap();
        let mut arrays = HashMap::new();
        arrays.insert("A".to_string(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let st = exec_lir(&lir, arrays, HashMap::new()).unwrap();
        // s is some register; its final value must be 15 — find it by max
        // value match through the program's scalar count: simplest check via
        // sum over regs
        assert!(
            st.regs.values().any(|v| v.as_f64() == 15.0),
            "{:?}",
            st.regs
        );
    }
}
