//! Value-level interpreter for lowered IR — the differential oracle for the
//! lowering stage.
//!
//! The trace-based cycle simulator (in `slc-sim`) deliberately never
//! computes data values; this interpreter does, so the workspace can check
//! that *lowering itself* preserves semantics: running a program through
//! `lower_program` + this interpreter must produce the same final array and
//! scalar state as the AST reference interpreter. The differential tests
//! live in the workspace `tests/` directory.
//!
//! Execution model: ops run in program order (scheduling does not change
//! values — only timing — so the oracle checks the unscheduled IR);
//! predicated ops are skipped when their guard fails; memory addresses come
//! from the symbolic linear forms evaluated against the live loop indices.
//! Programs whose memory ops carry no linear form (non-affine subscripts)
//! cannot be value-executed and report [`LirExecError::UnknownAddress`].
//!
//! Hot path: the program is *compiled once* before execution — array names
//! interned to dense slots, the register file flattened to a `Vec` with a
//! written-mask, and each memory op's linear form resolved into
//! `konst + Σ coeff · slot` terms (env slot first, scalar-register fallback,
//! preserving the original lookup order). The per-trip inner loop then never
//! touches a `HashMap`. The public [`exec_lir`] API and the returned
//! [`LirState`] (maps keyed by name/register) are unchanged.

use crate::ir::{BinKind, Lir, LirLoop, LirProgram, Op, OpKind, Operand, VReg};
use slc_ast::Interner;
use std::collections::HashMap;

/// Runtime value of a register (dynamically typed like the AST oracle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RVal {
    /// integer
    I(i64),
    /// float
    F(f64),
}

impl RVal {
    /// As f64 for mixed arithmetic.
    pub fn as_f64(self) -> f64 {
        match self {
            RVal::I(v) => v as f64,
            RVal::F(v) => v,
        }
    }

    /// Truthiness.
    pub fn truthy(self) -> bool {
        match self {
            RVal::I(v) => v != 0,
            RVal::F(v) => v != 0.0,
        }
    }
}

/// Errors from IR execution.
#[derive(Debug, Clone, PartialEq)]
pub enum LirExecError {
    /// A memory op has no symbolic address (non-affine subscript).
    UnknownAddress(String),
    /// Address evaluated outside the array.
    OutOfBounds {
        /// array name
        array: String,
        /// evaluated element index
        index: i64,
    },
    /// Integer division by zero.
    DivByZero,
}

impl std::fmt::Display for LirExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LirExecError::UnknownAddress(a) => write!(f, "non-affine address into {a}"),
            LirExecError::OutOfBounds { array, index } => {
                write!(f, "index {index} out of bounds in {array}")
            }
            LirExecError::DivByZero => write!(f, "division by zero"),
        }
    }
}

/// Final machine state after IR execution.
#[derive(Debug, Clone, Default)]
pub struct LirState {
    /// register file
    pub regs: HashMap<VReg, RVal>,
    /// array contents (row-major, f64 storage; integer arrays hold integral
    /// values)
    pub arrays: HashMap<String, Vec<f64>>,
    /// loop-variable environment (for address evaluation)
    pub env: HashMap<String, i64>,
    /// scalar-name → register map, for address terms that reference
    /// non-loop scalars (e.g. `a[i][k]` with `i` set at runtime)
    pub scalar_regs: HashMap<String, VReg>,
}

/// One linear-form term, resolved at compile time. The env slot is `None`
/// when the variable is not a loop variable anywhere in the program (so the
/// env lookup can never hit) and the register is `None` when the variable is
/// not a tracked scalar either.
#[derive(Debug, Clone, Copy)]
struct CTerm {
    env: Option<u32>,
    reg: Option<VReg>,
    coeff: i64,
}

/// A compiled memory address: `konst + Σ coeff · value(term)` into an
/// interned array slot. `known == false` marks a non-affine subscript that
/// errors when (and only when) the op actually executes.
#[derive(Debug, Clone)]
struct CAddr {
    array: u32,
    known: bool,
    konst: i64,
    terms: Vec<CTerm>,
}

#[derive(Debug, Clone)]
enum CKind {
    Load {
        dst: VReg,
        addr: CAddr,
    },
    Store {
        src: Operand,
        addr: CAddr,
    },
    Bin {
        op: BinKind,
        fp: bool,
        dst: VReg,
        a: Operand,
        b: Operand,
    },
    Mov {
        dst: VReg,
        src: Operand,
    },
    /// intrinsic with the dispatch resolved: 0=abs 1=sqrt 2=exp 3=sign
    /// 4=min 5=max 6=unknown (evaluates to 0.0, like the tree walk)
    Intrinsic {
        which: u8,
        dst: VReg,
        args: Vec<Operand>,
    },
    Branch,
}

#[derive(Debug, Clone)]
struct COp {
    pred: Option<(VReg, bool)>,
    kind: CKind,
}

#[derive(Debug, Clone)]
enum CItem {
    Block(Vec<COp>),
    Loop {
        var: u32,
        init: i64,
        step: i64,
        trips: i64,
        body: Vec<CItem>,
    },
}

struct Compiler<'p> {
    arrays: Interner,
    /// loop variables only — the dynamic env can never hold anything else
    env_vars: Interner,
    scalar_regs: HashMap<&'p str, VReg>,
    max_reg: u32,
}

impl<'p> Compiler<'p> {
    fn collect_loop_vars(&mut self, items: &[Lir]) {
        for item in items {
            if let Lir::Loop(l) = item {
                self.env_vars.intern(&l.var);
                self.collect_loop_vars(&l.body);
            }
        }
    }

    fn note_reg(&mut self, r: VReg) {
        self.max_reg = self.max_reg.max(r + 1);
    }

    fn note_operand(&mut self, o: &Operand) {
        if let Operand::Reg(r) = o {
            self.note_reg(*r);
        }
    }

    fn addr(&mut self, op: &Op) -> CAddr {
        let (array, lin, _) = op.mem().expect("mem op");
        let array = self.arrays.intern(array).0;
        let Some(lin) = lin else {
            return CAddr {
                array,
                known: false,
                konst: 0,
                terms: Vec::new(),
            };
        };
        let terms = lin
            .terms
            .iter()
            .map(|(var, c)| {
                let reg = self.scalar_regs.get(var.as_str()).copied();
                if let Some(r) = reg {
                    self.note_reg(r);
                }
                CTerm {
                    env: self.env_vars.get(var).map(|s| s.0),
                    reg,
                    coeff: *c,
                }
            })
            .collect();
        CAddr {
            array,
            known: true,
            konst: lin.konst,
            terms,
        }
    }

    fn op(&mut self, op: &Op) -> COp {
        if let Some((p, _)) = op.pred {
            self.note_reg(p);
        }
        let kind = match &op.kind {
            OpKind::Load { dst, .. } => {
                self.note_reg(*dst);
                CKind::Load {
                    dst: *dst,
                    addr: self.addr(op),
                }
            }
            OpKind::Store { src, .. } => {
                self.note_operand(src);
                CKind::Store {
                    src: *src,
                    addr: self.addr(op),
                }
            }
            OpKind::Bin {
                op: k,
                fp,
                dst,
                a,
                b,
            } => {
                self.note_reg(*dst);
                self.note_operand(a);
                self.note_operand(b);
                CKind::Bin {
                    op: *k,
                    fp: *fp,
                    dst: *dst,
                    a: *a,
                    b: *b,
                }
            }
            OpKind::Mov { dst, src } => {
                self.note_reg(*dst);
                self.note_operand(src);
                CKind::Mov {
                    dst: *dst,
                    src: *src,
                }
            }
            OpKind::Intrinsic {
                name, dst, args, ..
            } => {
                self.note_reg(*dst);
                for a in args {
                    self.note_operand(a);
                }
                let which = match name.as_str() {
                    "abs" => 0,
                    "sqrt" => 1,
                    "exp" => 2,
                    "sign" => 3,
                    "min" => 4,
                    "max" => 5,
                    _ => 6,
                };
                CKind::Intrinsic {
                    which,
                    dst: *dst,
                    args: args.clone(),
                }
            }
            OpKind::Branch => CKind::Branch,
        };
        COp {
            pred: op.pred,
            kind,
        }
    }

    fn items(&mut self, items: &[Lir]) -> Vec<CItem> {
        items
            .iter()
            .map(|item| match item {
                Lir::Block(ops) => CItem::Block(ops.iter().map(|o| self.op(o)).collect()),
                Lir::Loop(l) => self.loop_(l),
            })
            .collect()
    }

    fn loop_(&mut self, l: &LirLoop) -> CItem {
        CItem::Loop {
            var: self.env_vars.intern(&l.var).0,
            init: l.init,
            step: l.step,
            trips: l.trips,
            body: self.items(&l.body),
        }
    }
}

/// Dense execution frame. Register reads distinguish "never written" from
/// real values so the defaults (`F(0.0)` for operands, `I(0)` for
/// predicates, address-term error for linform scalars) match the map-based
/// semantics exactly.
struct Exec {
    regs: Vec<RVal>,
    written: Vec<bool>,
    arrays: Vec<Vec<f64>>,
    present: Vec<bool>,
    env: Vec<Option<i64>>,
}

impl Exec {
    fn operand(&self, o: &Operand) -> RVal {
        match o {
            Operand::Reg(r) => {
                if self.written[*r as usize] {
                    self.regs[*r as usize]
                } else {
                    RVal::F(0.0)
                }
            }
            Operand::ImmI(v) => RVal::I(*v),
            Operand::ImmF(v) => RVal::F(*v),
        }
    }

    fn set_reg(&mut self, r: VReg, v: RVal) {
        self.regs[r as usize] = v;
        self.written[r as usize] = true;
    }

    fn addr(&self, a: &CAddr, names: &Interner) -> Result<(u32, i64), LirExecError> {
        let unknown =
            || LirExecError::UnknownAddress(names.resolve(slc_ast::Symbol(a.array)).to_string());
        if !a.known {
            return Err(unknown());
        }
        let mut v = a.konst;
        for t in &a.terms {
            let val = match t.env.and_then(|s| self.env[s as usize]) {
                Some(x) => x,
                None => match t.reg {
                    Some(r) if self.written[r as usize] => match self.regs[r as usize] {
                        RVal::I(x) => x,
                        RVal::F(x) if x.fract() == 0.0 => x as i64,
                        _ => return Err(unknown()),
                    },
                    _ => return Err(unknown()),
                },
            };
            v += t.coeff * val;
        }
        Ok((a.array, v))
    }

    fn exec_op(&mut self, op: &COp, names: &Interner) -> Result<(), LirExecError> {
        if let Some((p, sense)) = op.pred {
            let pv = if self.written[p as usize] {
                self.regs[p as usize]
            } else {
                RVal::I(0)
            };
            if pv.truthy() != sense {
                return Ok(());
            }
        }
        match &op.kind {
            CKind::Load { dst, addr } => {
                let (slot, idx) = self.addr(addr, names)?;
                self.present[slot as usize] = true;
                let arr = &self.arrays[slot as usize];
                if idx < 0 || idx as usize >= arr.len() {
                    return Err(LirExecError::OutOfBounds {
                        array: names.resolve(slc_ast::Symbol(slot)).to_string(),
                        index: idx,
                    });
                }
                let v = arr[idx as usize];
                self.set_reg(*dst, RVal::F(v));
            }
            CKind::Store { src, addr } => {
                let v = self.operand(src).as_f64();
                let (slot, idx) = self.addr(addr, names)?;
                self.present[slot as usize] = true;
                let arr = &mut self.arrays[slot as usize];
                if idx < 0 || idx as usize >= arr.len() {
                    return Err(LirExecError::OutOfBounds {
                        array: names.resolve(slc_ast::Symbol(slot)).to_string(),
                        index: idx,
                    });
                }
                arr[idx as usize] = v;
            }
            CKind::Bin {
                op: k,
                fp,
                dst,
                a,
                b,
            } => {
                let (va, vb) = (self.operand(a), self.operand(b));
                let out = exec_bin(*k, *fp, va, vb)?;
                self.set_reg(*dst, out);
            }
            CKind::Mov { dst, src } => {
                let v = self.operand(src);
                self.set_reg(*dst, v);
            }
            CKind::Intrinsic { which, dst, args } => {
                let f = |k: usize| args.get(k).map(|a| self.operand(a).as_f64()).unwrap_or(0.0);
                let out = match which {
                    0 => f(0).abs(),
                    1 => f(0).sqrt(),
                    2 => f(0).exp(),
                    3 => f(0).signum(),
                    4 => f(0).min(f(1)),
                    5 => f(0).max(f(1)),
                    _ => 0.0,
                };
                self.set_reg(*dst, RVal::F(out));
            }
            CKind::Branch => {}
        }
        Ok(())
    }

    fn exec_item(&mut self, item: &CItem, names: &Interner) -> Result<(), LirExecError> {
        match item {
            CItem::Block(ops) => {
                for op in ops {
                    self.exec_op(op, names)?;
                }
                Ok(())
            }
            CItem::Loop {
                var,
                init,
                step,
                trips,
                body,
            } => {
                for t in 0..*trips {
                    self.env[*var as usize] = Some(init + t * step);
                    for item in body {
                        self.exec_item(item, names)?;
                    }
                }
                // loop variable register already updated by the lowered
                // control ops
                self.env[*var as usize] = Some(init + trips * step);
                Ok(())
            }
        }
    }
}

fn exec_bin(k: BinKind, fp: bool, a: RVal, b: RVal) -> Result<RVal, LirExecError> {
    use RVal::*;
    // integer flavour only when both operands are integers and fp is false
    let ints = matches!((a, b), (I(_), I(_))) && !fp;
    Ok(match k {
        BinKind::Add => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    I(x.wrapping_add(y))
                } else {
                    unreachable!()
                }
            } else {
                F(a.as_f64() + b.as_f64())
            }
        }
        BinKind::Sub => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    I(x.wrapping_sub(y))
                } else {
                    unreachable!()
                }
            } else {
                F(a.as_f64() - b.as_f64())
            }
        }
        BinKind::Mul => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    I(x.wrapping_mul(y))
                } else {
                    unreachable!()
                }
            } else {
                F(a.as_f64() * b.as_f64())
            }
        }
        BinKind::Div => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    if y == 0 {
                        return Err(LirExecError::DivByZero);
                    }
                    I(x.wrapping_div(y))
                } else {
                    unreachable!()
                }
            } else {
                F(a.as_f64() / b.as_f64())
            }
        }
        BinKind::Mod => {
            if ints {
                if let (I(x), I(y)) = (a, b) {
                    if y == 0 {
                        return Err(LirExecError::DivByZero);
                    }
                    I(x.wrapping_rem(y))
                } else {
                    unreachable!()
                }
            } else {
                let d = b.as_f64();
                if d == 0.0 {
                    return Err(LirExecError::DivByZero);
                }
                F(a.as_f64() % d)
            }
        }
        BinKind::Cmp(c) => I(c.eval(a.as_f64(), b.as_f64()) as i64),
        BinKind::And => I((a.truthy() && b.truthy()) as i64),
        BinKind::Or => I((a.truthy() || b.truthy()) as i64),
        BinKind::Not => I(!a.truthy() as i64),
    })
}

/// Execute a lowered program from an initial array state (row-major f64 per
/// array) and initial register values. Returns the final state.
pub fn exec_lir(
    prog: &LirProgram,
    init_arrays: HashMap<String, Vec<f64>>,
    init_regs: HashMap<VReg, RVal>,
) -> Result<LirState, LirExecError> {
    exec_lir_spanned(prog, init_arrays, init_regs, &slc_trace::Tracer::disabled())
}

/// [`exec_lir`] with a wall-clock span (category `"interp"`, name
/// `lirinterp.run`) on `tracer`, covering the compile-once pass and the
/// execution. The result is identical to [`exec_lir`].
pub fn exec_lir_spanned(
    prog: &LirProgram,
    init_arrays: HashMap<String, Vec<f64>>,
    init_regs: HashMap<VReg, RVal>,
    tracer: &slc_trace::Tracer,
) -> Result<LirState, LirExecError> {
    let mut span = tracer.span("interp", "lirinterp.run");
    span.arg("items", prog.items.len());
    // compile once: intern names, resolve address terms, size the frame
    let mut c = Compiler {
        arrays: Interner::new(),
        env_vars: Interner::new(),
        scalar_regs: prog
            .scalar_regs
            .iter()
            .map(|(n, r)| (n.as_str(), *r))
            .collect(),
        max_reg: prog.n_regs,
    };
    for (name, _) in &prog.arrays {
        c.arrays.intern(name);
    }
    c.collect_loop_vars(&prog.items);
    let items = c.items(&prog.items);
    for r in init_regs.keys() {
        c.max_reg = c.max_reg.max(r + 1);
    }

    let mut init_arrays = init_arrays;
    let mut ex = Exec {
        regs: vec![RVal::F(0.0); c.max_reg as usize],
        written: vec![false; c.max_reg as usize],
        arrays: Vec::with_capacity(c.arrays.len()),
        present: Vec::with_capacity(c.arrays.len()),
        env: vec![None; c.env_vars.len()],
    };
    for (r, v) in &init_regs {
        ex.set_reg(*r, *v);
    }
    // declared arrays start zeroed; seeded arrays are moved in; arrays only
    // mentioned by (out-of-spec) mem ops materialize lazily as empty, like
    // the old `entry().or_default()` did
    let declared: HashMap<&str, usize> =
        prog.arrays.iter().map(|(n, l)| (n.as_str(), *l)).collect();
    for s in 0..c.arrays.len() as u32 {
        let name = c.arrays.resolve(slc_ast::Symbol(s));
        match init_arrays.remove(name) {
            Some(a) => {
                ex.arrays.push(a);
                ex.present.push(true);
            }
            None => match declared.get(name) {
                Some(len) => {
                    ex.arrays.push(vec![0.0; *len]);
                    ex.present.push(true);
                }
                None => {
                    ex.arrays.push(Vec::new());
                    ex.present.push(false);
                }
            },
        }
    }

    let mut result = Ok(());
    for item in &items {
        result = ex.exec_item(item, &c.arrays);
        if result.is_err() {
            break;
        }
    }
    result?;

    // flatten the frame back into the map-keyed public state
    let mut st = LirState {
        regs: HashMap::new(),
        arrays: init_arrays, // entries never referenced by the program
        env: HashMap::new(),
        scalar_regs: prog.scalar_regs.iter().cloned().collect(),
    };
    for (r, w) in ex.written.iter().enumerate() {
        if *w {
            st.regs.insert(r as VReg, ex.regs[r]);
        }
    }
    for (s, a) in ex.arrays.into_iter().enumerate() {
        if ex.present[s] {
            st.arrays
                .insert(c.arrays.resolve(slc_ast::Symbol(s as u32)).to_string(), a);
        }
    }
    for (s, v) in ex.env.iter().enumerate() {
        if let Some(v) = v {
            st.env.insert(
                c.env_vars.resolve(slc_ast::Symbol(s as u32)).to_string(),
                *v,
            );
        }
    }
    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use slc_ast::parse_program;

    #[test]
    fn simple_loop_values() {
        let p = parse_program(
            "float A[8]; float B[8]; int i;\n\
             for (i = 0; i < 8; i++) B[i] = A[i] * 2.0 + 1.0;",
        )
        .unwrap();
        let lir = lower_program(&p).unwrap();
        let mut arrays = HashMap::new();
        arrays.insert("A".to_string(), (0..8).map(|k| k as f64).collect());
        let st = exec_lir(&lir, arrays, HashMap::new()).unwrap();
        let b = &st.arrays["B"];
        for (k, v) in b.iter().enumerate() {
            assert_eq!(*v, k as f64 * 2.0 + 1.0);
        }
    }

    #[test]
    fn predicated_store_skipped() {
        let p = parse_program(
            "float A[4]; int c; int i;\n\
             c = 0;\n\
             for (i = 0; i < 4; i++) if (c) A[i] = 9.0;",
        )
        .unwrap();
        let lir = lower_program(&p).unwrap();
        let st = exec_lir(&lir, HashMap::new(), HashMap::new()).unwrap();
        assert!(st.arrays["A"].iter().all(|v| *v == 0.0));
    }

    #[test]
    fn oob_detected() {
        let p = parse_program("float A[4]; int i; for (i = 0; i < 6; i++) A[i] = 1.0;").unwrap();
        let lir = lower_program(&p).unwrap();
        assert!(matches!(
            exec_lir(&lir, HashMap::new(), HashMap::new()),
            Err(LirExecError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn accumulator_value() {
        let p = parse_program(
            "float A[5]; float s; int i;\n\
             for (i = 0; i < 5; i++) s += A[i];",
        )
        .unwrap();
        let lir = lower_program(&p).unwrap();
        let mut arrays = HashMap::new();
        arrays.insert("A".to_string(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let st = exec_lir(&lir, arrays, HashMap::new()).unwrap();
        // s is some register; its final value must be 15 — find it by max
        // value match through the program's scalar count: simplest check via
        // sum over regs
        assert!(
            st.regs.values().any(|v| v.as_f64() == 15.0),
            "{:?}",
            st.regs
        );
    }

    #[test]
    fn final_env_and_seeded_arrays_roundtrip() {
        let p = parse_program("float A[3]; int i; for (i = 0; i < 3; i++) A[i] = 1.0;").unwrap();
        let lir = lower_program(&p).unwrap();
        let mut arrays = HashMap::new();
        // an array the program never mentions must pass through untouched
        arrays.insert("UNRELATED".to_string(), vec![7.0]);
        let st = exec_lir(&lir, arrays, HashMap::new()).unwrap();
        assert_eq!(st.env.get("i"), Some(&3));
        assert_eq!(st.arrays["UNRELATED"], vec![7.0]);
        assert_eq!(st.arrays["A"], vec![1.0; 3]);
    }
}
