//! Greedy cycle-by-cycle list scheduling of basic blocks into VLIW bundles.
//!
//! This is the "final compiler" stage the paper assumes under SLMS
//! (Fig. 3): after the source-level transformation, plain list scheduling of
//! the loop body — no modulo scheduling — packs the exposed parallelism
//! into issue groups. Priority is critical-path height; resources are the
//! per-class unit counts and the global issue width of the machine model.

use crate::deps::{intra_deps, IrEdge};
use crate::ir::{Bundle, Op, OpClass, ALL_CLASSES};
use crate::mach::MachineDesc;

/// Result of list scheduling: bundles (possibly empty = stall cycles) and
/// simple statistics.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// issue groups; index = cycle
    pub bundles: Vec<Bundle>,
    /// cycle assigned to each input op
    pub cycle_of: Vec<u32>,
}

impl Schedule {
    /// Schedule length in cycles.
    pub fn len(&self) -> usize {
        self.bundles.len()
    }

    /// True when no cycles are needed (empty block).
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }
}

/// Critical-path height of each op (longest latency path to any sink).
pub fn heights(n: usize, edges: &[IrEdge]) -> Vec<u32> {
    let mut h = vec![0u32; n];
    // reverse topological: process sinks first; edges go forward in index
    // order except anti edges — iterate to fixpoint (graphs are tiny)
    let mut changed = true;
    let mut guard = 0;
    while changed && guard < n + 8 {
        changed = false;
        guard += 1;
        for e in edges {
            let cand = h[e.to] + e.lat.max(1);
            if h[e.from] < cand {
                h[e.from] = cand;
                changed = true;
            }
        }
    }
    h
}

/// List-schedule one basic block.
pub fn list_schedule(ops: &[Op], m: &MachineDesc) -> Schedule {
    let n = ops.len();
    if n == 0 {
        return Schedule {
            bundles: vec![],
            cycle_of: vec![],
        };
    }
    let edges = intra_deps(ops, m);
    let h = heights(n, &edges);
    let mut preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    for e in &edges {
        preds[e.to].push((e.from, e.lat));
    }
    let mut cycle_of = vec![u32::MAX; n];
    let mut scheduled = vec![false; n];
    let mut bundles: Vec<Bundle> = Vec::new();
    let mut remaining = n;
    let mut cycle: u32 = 0;
    while remaining > 0 {
        let mut used = [0usize; 7];
        let mut issued = 0usize;
        let class_idx = |c: OpClass| ALL_CLASSES.iter().position(|&x| x == c).unwrap();
        let mut bundle: Bundle = Vec::new();
        // repeatedly pick the best ready op this cycle (0-lat preds may be
        // satisfied by ops placed earlier in this same bundle)
        loop {
            if issued >= m.issue_width {
                break;
            }
            let mut best: Option<usize> = None;
            for v in 0..n {
                if scheduled[v] {
                    continue;
                }
                // 0-latency predecessors may share this cycle: VLIW bundle
                // semantics read all operands before any write lands.
                let ready = preds[v]
                    .iter()
                    .all(|&(u, lat)| scheduled[u] && cycle_of[u] + lat <= cycle);
                if !ready {
                    continue;
                }
                let ci = class_idx(ops[v].class());
                if used[ci] >= m.units_of(ops[v].class()) {
                    continue;
                }
                match best {
                    None => best = Some(v),
                    Some(b) if h[v] > h[b] => best = Some(v),
                    _ => {}
                }
            }
            let Some(v) = best else { break };
            let ci = class_idx(ops[v].class());
            used[ci] += 1;
            issued += 1;
            scheduled[v] = true;
            cycle_of[v] = cycle;
            bundle.push(ops[v].clone());
            remaining -= 1;
        }
        bundles.push(bundle);
        cycle += 1;
        if cycle as usize > 64 * n + 64 {
            unreachable!("list scheduler failed to converge");
        }
    }
    Schedule { bundles, cycle_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinKind, OpKind, Operand};
    use slc_analysis::LinForm;

    fn lin(c: i64, k: i64) -> LinForm {
        LinForm::var("i").scale(c).add(&LinForm::constant(k))
    }

    fn load(dst: u32, k: i64) -> Op {
        Op::new(OpKind::Load {
            dst,
            array: "A".into(),
            addr: Some(lin(1, k)),
        })
    }

    fn add(dst: u32, a: u32, b: u32) -> Op {
        Op::new(OpKind::Bin {
            op: BinKind::Add,
            fp: true,
            dst,
            a: Operand::Reg(a),
            b: Operand::Reg(b),
        })
    }

    #[test]
    fn independent_loads_pack() {
        let m = MachineDesc::default(); // 2 mem units
        let ops = vec![load(0, 0), load(1, 1), load(2, 2), load(3, 3)];
        let s = list_schedule(&ops, &m);
        // 4 loads over 2 mem units → 2 cycles
        assert_eq!(s.bundles.iter().filter(|b| !b.is_empty()).count(), 2);
        assert_eq!(s.bundles[0].len(), 2);
    }

    #[test]
    fn latency_respected() {
        let m = MachineDesc::default(); // Mem lat 2
        let ops = vec![load(0, 0), add(1, 0, 0)];
        let s = list_schedule(&ops, &m);
        assert_eq!(s.cycle_of[0], 0);
        assert_eq!(s.cycle_of[1], 2); // waits for the load
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn dependent_chain_serializes() {
        let m = MachineDesc::default(); // FpAdd lat 3
        let ops = vec![load(0, 0), add(1, 0, 0), add(2, 1, 1), add(3, 2, 2)];
        let s = list_schedule(&ops, &m);
        // 2 (load) + 3 + 3 + 1 = cycles 0,2,5,8
        assert_eq!(s.cycle_of[3], 8);
    }

    #[test]
    fn issue_width_limits() {
        let m = MachineDesc {
            issue_width: 1,
            ..MachineDesc::default()
        };
        let ops = vec![load(0, 0), load(1, 1)];
        let s = list_schedule(&ops, &m);
        assert_eq!(s.cycle_of[1], 1);
    }

    #[test]
    fn priority_prefers_critical_path() {
        // long chain rooted at load(0) vs a lone independent load: the
        // chain head should issue first even though both are ready.
        let m = MachineDesc {
            issue_width: 1,
            ..MachineDesc::default()
        };
        let ops = vec![
            load(9, 5), // independent, low height
            load(0, 0),
            add(1, 0, 0),
            add(2, 1, 1),
        ];
        let s = list_schedule(&ops, &m);
        assert!(s.cycle_of[1] < s.cycle_of[0], "{:?}", s.cycle_of);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::ir::Lir;
    use crate::ir::OpKind;
    use crate::lower::lower_program;
    use slc_ast::parse_program;

    #[test]
    fn branch_scheduled_last() {
        let lir = lower_program(
            &parse_program(
                "float A[16]; float B[16]; int i; for (i = 0; i < 16; i++) A[i] = B[i] + 1.0;",
            )
            .unwrap(),
        )
        .unwrap();
        let ops = lir
            .items
            .iter()
            .find_map(|it| match it {
                Lir::Loop(l) => l.body.iter().find_map(|b| match b {
                    Lir::Block(o) => Some(o.clone()),
                    _ => None,
                }),
                _ => None,
            })
            .unwrap();
        let m = MachineDesc::default();
        let s = list_schedule(&ops, &m);
        let br_idx = ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::Branch))
            .unwrap();
        let br_cycle = s.cycle_of[br_idx];
        assert!(s.cycle_of.iter().all(|&c| c <= br_cycle));
    }

    #[test]
    fn empty_block_schedules_empty() {
        let m = MachineDesc::default();
        let s = list_schedule(&[], &m);
        assert!(s.is_empty());
    }
}
