//! Register-pressure estimation and spill accounting.
//!
//! The final-compiler substrate does not rewrite code for spills; it
//! *charges* them: the maximum number of simultaneously live virtual
//! registers in a scheduled block is compared against the architected
//! register count, and each excess register costs the simulator extra
//! memory traffic per iteration (one reload + one store). That is enough to
//! reproduce the paper's register-pressure phenomena: MVE-unrolled kernels
//! on the 8-register Pentium (kernel 10, Fig. 17) and the IMS failure of
//! Fig. 11.

use crate::ir::Bundle;
use std::collections::HashMap;

/// Maximum number of simultaneously live registers across a bundle
/// schedule. A register is live from its (first) defining cycle to its last
/// using cycle; registers read before any definition (live-in: loop
/// carried scalars) are live from cycle 0.
pub fn max_pressure(bundles: &[Bundle]) -> usize {
    let mut first_def: HashMap<u32, usize> = HashMap::new();
    let mut last_use: HashMap<u32, usize> = HashMap::new();
    for (c, b) in bundles.iter().enumerate() {
        for op in b {
            for r in op.srcs() {
                last_use.insert(r, c);
                first_def.entry(r).or_insert(0); // live-in if undefined
            }
            if let Some(d) = op.dst() {
                first_def.entry(d).or_insert(c);
                last_use.entry(d).or_insert(c);
            }
        }
    }
    let n = bundles.len();
    let mut delta = vec![0i64; n + 1];
    for (r, &s) in &first_def {
        let e = last_use.get(r).copied().unwrap_or(s);
        delta[s] += 1;
        delta[e + 1] -= 1;
    }
    let mut live = 0i64;
    let mut peak = 0i64;
    for d in delta {
        live += d;
        peak = peak.max(live);
    }
    peak as usize
}

/// Spill accounting: excess registers beyond the architected count, and the
/// extra memory accesses charged per loop iteration (2 per excess register:
/// one spill store, one reload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillInfo {
    /// registers that do not fit
    pub excess: usize,
    /// extra memory accesses charged per iteration
    pub extra_mem_per_iter: usize,
}

/// Compute spill info for a measured pressure against an architected
/// register count.
pub fn spills(pressure: usize, arch_regs: usize) -> SpillInfo {
    let excess = pressure.saturating_sub(arch_regs);
    SpillInfo {
        excess,
        extra_mem_per_iter: 2 * excess,
    }
}

/// Combine ops from a loop body into the pressure measure used for the
/// pipelined (IMS) path, where the scheduler already reports a
/// versions-adjusted pressure.
pub fn pipelined_spills(reg_pressure: usize, arch_regs: usize) -> SpillInfo {
    spills(reg_pressure, arch_regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinKind, Op, OpKind, Operand};

    fn movi(dst: u32) -> Op {
        Op::new(OpKind::Mov {
            dst,
            src: Operand::ImmI(1),
        })
    }

    fn add(dst: u32, a: u32, b: u32) -> Op {
        Op::new(OpKind::Bin {
            op: BinKind::Add,
            fp: false,
            dst,
            a: Operand::Reg(a),
            b: Operand::Reg(b),
        })
    }

    #[test]
    fn disjoint_lifetimes_reuse() {
        // r0 defined and consumed, then r1: peak 2 (r0 still live at its use)
        let bundles = vec![
            vec![movi(0)],
            vec![add(1, 0, 0)],
            vec![movi(2)],
            vec![add(3, 2, 2)],
        ];
        assert_eq!(max_pressure(&bundles), 2);
    }

    #[test]
    fn overlapping_lifetimes_accumulate() {
        let bundles = vec![
            vec![movi(0)],
            vec![movi(1)],
            vec![movi(2)],
            vec![add(3, 0, 1), add(4, 2, 0)],
        ];
        // r0, r1, r2 all live at cycle 3
        assert!(max_pressure(&bundles) >= 3);
    }

    #[test]
    fn live_in_counts_from_start() {
        // use of r9 with no def: live-in
        let bundles = vec![vec![movi(0)], vec![add(1, 9, 0)]];
        assert!(max_pressure(&bundles) >= 2);
    }

    #[test]
    fn spill_math() {
        assert_eq!(spills(10, 8).excess, 2);
        assert_eq!(spills(10, 8).extra_mem_per_iter, 4);
        assert_eq!(spills(6, 8).excess, 0);
    }
}
