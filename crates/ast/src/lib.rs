//! # slc-ast — abstract syntax tree for the source-level compiler
//!
//! This crate implements the front end of the Source Level Compiler (SLC)
//! described in *"Towards a Source Level Compiler: Source Level Modulo
//! Scheduling"* (Ben-Asher & Meisler, ICPP 2006).
//!
//! The paper implements SLMS inside Wolfe's *Tiny* loop restructurer, which
//! operates on the AST of a small C-like loop language. This crate provides
//! an equivalent substrate, built from scratch:
//!
//! * a typed AST for a C-like mini language with `for`/`while` loops,
//!   `if`/`else`, scalar and (multi-dimensional) array variables, and the
//!   usual arithmetic/logical operators ([`Expr`], [`Stmt`], [`Program`]);
//! * a lexer and recursive-descent parser ([`parse_program`]);
//! * a pretty printer that emits both canonical re-parsable source and the
//!   paper's `stmt; || stmt;` parallel-group notation ([`pretty`]);
//! * AST manipulation utilities used by every transformation: induction
//!   variable shifting, variable renaming, read/write set collection and
//!   operation counting ([`visit`]).
//!
//! The one deliberate extension over plain C is the **parallel group**
//! statement ([`Stmt::Par`]): SLMS emits kernels whose rows contain
//! multi-instructions that the final compiler may execute in parallel. In the
//! paper these are printed as `MI1; || MI2;`. Here they are represented
//! explicitly in the AST (canonical syntax `par { MI1; MI2; }`) so that
//! downstream consumers (the list scheduler, the simulator) can see the
//! parallelism hint while the sequential semantics stay well defined: a
//! parallel group executes its members **in textual order** — exactly the
//! semantics the generated C code would have when handed to the final
//! compiler.

pub mod expr;
pub mod intern;
pub mod lexer;
pub mod loopid;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod stmt;
pub mod visit;

pub use expr::{BinOp, CmpOp, Expr, LValue, UnOp};
pub use intern::{Interner, Symbol};
pub use lexer::{Lexer, Token};
pub use loopid::{innermost_loop_ids, LoopId};
pub use parser::{parse_expr, parse_program, parse_stmts, ParseError};
pub use pretty::{to_paper_style, to_source};
pub use program::{Decl, Program, Ty};
pub use stmt::{AssignOp, ForLoop, Stmt};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_pretty_roundtrip_smoke() {
        let src = "float A[100]; float B[100]; float s; float t;\n\
                   for (i = 0; i < 100; i = i + 1) { t = A[i] * B[i]; s = s + t; }";
        let p = parse_program(src).unwrap();
        let printed = to_source(&p);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2);
    }
}
