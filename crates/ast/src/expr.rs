//! Expressions and l-values of the mini language.
//!
//! Expressions are deliberately simple: scalars, array references with
//! arbitrary index expressions (the dependence analyzer only understands
//! *affine* indices, everything else is treated conservatively), unary and
//! binary operators, comparisons, boolean connectives and a C-style ternary
//! conditional (needed for the paper's §10 while-loop extension).

use std::fmt;

/// Binary arithmetic and logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integer remainder)
    Mod,
    /// `&&`
    And,
    /// `||`
    Or,
    /// comparison operators, kept in one variant family for compact matching
    Cmp(CmpOp),
}

/// Comparison operators (`<`, `<=`, `>`, `>=`, `==`, `!=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    /// The logical negation (`a < b` ⇔ `!(a >= b)`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Evaluate the comparison on two `f64` values (integers are embedded).
    pub fn eval(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// arithmetic negation `-e`
    Neg,
    /// logical not `!e`
    Not,
}

/// An expression of the mini language.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal, e.g. `42`.
    Int(i64),
    /// Floating point literal, e.g. `2.5`.
    Float(f64),
    /// Scalar variable reference, e.g. `x`.
    Var(String),
    /// Array element reference, e.g. `A[i + 1]` or `X[k][j]`.
    Index(String, Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Ternary conditional `c ? t : e`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Call to an opaque function, e.g. `f(x, A[i])`. SLMS treats calls as
    /// barriers for reordering unless the user marks them pure.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor: `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor: `lhs + rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }

    /// Convenience constructor: scalar variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor: 1-D array reference `name[idx]`.
    pub fn idx(name: impl Into<String>, idx: Expr) -> Expr {
        Expr::Index(name.into(), vec![idx])
    }

    /// `var + offset` folded when `offset == 0`; negative offsets print as
    /// subtraction. This is the canonical form produced by index shifting.
    pub fn var_plus(name: &str, offset: i64) -> Expr {
        match offset {
            0 => Expr::Var(name.to_string()),
            o if o > 0 => Expr::bin(BinOp::Add, Expr::Var(name.to_string()), Expr::Int(o)),
            o => Expr::bin(BinOp::Sub, Expr::Var(name.to_string()), Expr::Int(-o)),
        }
    }

    /// True if the expression is a literal constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Expr::Int(_) | Expr::Float(_))
    }

    /// Fold an integer-constant expression to its value, if possible.
    /// Used for loop bounds and subscript normalization.
    pub fn const_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Unary(UnOp::Neg, e) => e.const_int().map(|v| -v),
            Expr::Binary(op, a, b) => {
                let (a, b) = (a.const_int()?, b.const_int()?);
                match op {
                    BinOp::Add => Some(a + b),
                    BinOp::Sub => Some(a - b),
                    BinOp::Mul => Some(a * b),
                    BinOp::Div => (b != 0).then(|| a / b),
                    BinOp::Mod => (b != 0).then(|| a % b),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// The target of an assignment: a scalar or an array element.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element, e.g. `A[i + 1]`.
    Index(String, Vec<Expr>),
}

impl LValue {
    /// The variable or array name being written.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var(n) | LValue::Index(n, _) => n,
        }
    }

    /// View this l-value as the equivalent r-value expression.
    pub fn as_expr(&self) -> Expr {
        match self {
            LValue::Var(n) => Expr::Var(n.clone()),
            LValue::Index(n, idx) => Expr::Index(n.clone(), idx.clone()),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Cmp(c) => return write!(f, "{c}"),
        };
        f.write_str(s)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_folding() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Int(3),
            Expr::bin(BinOp::Mul, Expr::Int(4), Expr::Int(5)),
        );
        assert_eq!(e.const_int(), Some(23));
    }

    #[test]
    fn const_folding_div_by_zero_is_none() {
        let e = Expr::bin(BinOp::Div, Expr::Int(3), Expr::Int(0));
        assert_eq!(e.const_int(), None);
    }

    #[test]
    fn var_plus_forms() {
        assert_eq!(Expr::var_plus("i", 0), Expr::Var("i".into()));
        assert_eq!(
            Expr::var_plus("i", 2),
            Expr::bin(BinOp::Add, Expr::Var("i".into()), Expr::Int(2))
        );
        assert_eq!(
            Expr::var_plus("i", -1),
            Expr::bin(BinOp::Sub, Expr::Var("i".into()), Expr::Int(1))
        );
    }

    #[test]
    fn cmp_negate_and_swap() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.swap(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert!(CmpOp::Le.eval(2.0, 2.0));
        assert!(!CmpOp::Ne.eval(2.0, 2.0));
    }

    #[test]
    fn lvalue_as_expr() {
        let lv = LValue::Index("A".into(), vec![Expr::var("i")]);
        assert_eq!(lv.as_expr(), Expr::idx("A", Expr::var("i")));
        assert_eq!(lv.name(), "A");
    }
}
