//! Statements of the mini language.

use crate::expr::{CmpOp, Expr, LValue};

/// Compound-assignment operators. `x op= e` desugars semantically to
/// `x = x op e` but the surface form is preserved for readability — SLMS is
/// a *source level* optimizer and the paper stresses that the output should
/// stay close to the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

/// A counted `for` loop in the normalized form the paper works with:
/// `for (var = init; var cmp bound; var += step) body`.
///
/// `step` may be negative (reversed loops); `cmp` is one of `<`, `<=`, `>`,
/// `>=`. Loops whose iteration count cannot be expressed this way must be
/// rewritten by the user (the paper's §2 interaction: "replacing while-loops
/// by fixed range for-loops").
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    /// Induction variable name.
    pub var: String,
    /// Initial value expression (usually a constant or a symbolic bound).
    pub init: Expr,
    /// Comparison against `bound` that keeps the loop running.
    pub cmp: CmpOp,
    /// Loop bound expression.
    pub bound: Expr,
    /// Constant additive step applied each iteration.
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

impl ForLoop {
    /// Number of iterations when `init` and `bound` are integer constants.
    /// Returns `None` for symbolic bounds or a non-terminating direction.
    pub fn trip_count(&self) -> Option<i64> {
        let lo = self.init.const_int()?;
        let hi = self.bound.const_int()?;
        let s = self.step;
        if s == 0 {
            return None;
        }
        let span = match self.cmp {
            CmpOp::Lt => hi - lo,
            CmpOp::Le => hi - lo + 1,
            CmpOp::Gt => lo - hi,
            CmpOp::Ge => lo - hi + 1,
            _ => return None,
        };
        if span <= 0 {
            return Some(0);
        }
        let s_abs = s.abs();
        // Direction sanity: `<`/`<=` need a positive step, `>`/`>=` negative.
        let dir_ok = match self.cmp {
            CmpOp::Lt | CmpOp::Le => s > 0,
            CmpOp::Gt | CmpOp::Ge => s < 0,
            _ => false,
        };
        if !dir_ok {
            return None;
        }
        Some((span + s_abs - 1) / s_abs)
    }
}

/// A statement of the mini language.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Assignment `lhs op= rhs;`.
    Assign {
        /// assignment target
        target: LValue,
        /// surface operator (`=`, `+=`, ...)
        op: AssignOp,
        /// right-hand side
        value: Expr,
    },
    /// `if (cond) then_branch else else_branch` — either branch may be empty.
    If {
        /// controlling condition
        cond: Expr,
        /// statements executed when `cond` is true
        then_branch: Vec<Stmt>,
        /// statements executed when `cond` is false
        else_branch: Vec<Stmt>,
    },
    /// Counted `for` loop.
    For(ForLoop),
    /// `while (cond) body`.
    While {
        /// loop condition
        cond: Expr,
        /// loop body
        body: Vec<Stmt>,
    },
    /// Plain block `{ ... }` (no scoping — the language has a single flat
    /// namespace, like the paper's Tiny programs).
    Block(Vec<Stmt>),
    /// `break;`
    Break,
    /// A **parallel group** of statements: the SLMS output form
    /// `MI1; || MI2; || MI3;`. Sequential semantics are textual order; the
    /// annotation tells the final compiler the members are independent.
    Par(Vec<Stmt>),
    /// An opaque statement-level call `f(args);` — a scheduling barrier.
    Call(String, Vec<Expr>),
}

impl Stmt {
    /// Convenience constructor: simple assignment `target = value;`.
    pub fn assign(target: LValue, value: Expr) -> Stmt {
        Stmt::Assign {
            target,
            op: AssignOp::Set,
            value,
        }
    }

    /// Desugar a compound assignment into `target = target op value` form,
    /// returning the effective right-hand side read expression. For `op ==
    /// Set` this is just the value.
    pub fn desugared_rhs(target: &LValue, op: AssignOp, value: &Expr) -> Expr {
        use crate::expr::BinOp;
        let bin = |b| Expr::bin(b, target.as_expr(), value.clone());
        match op {
            AssignOp::Set => value.clone(),
            AssignOp::Add => bin(BinOp::Add),
            AssignOp::Sub => bin(BinOp::Sub),
            AssignOp::Mul => bin(BinOp::Mul),
            AssignOp::Div => bin(BinOp::Div),
        }
    }

    /// True if the statement (transitively) contains a loop.
    pub fn contains_loop(&self) -> bool {
        match self {
            Stmt::For(_) | Stmt::While { .. } => true,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => then_branch
                .iter()
                .chain(else_branch)
                .any(Stmt::contains_loop),
            Stmt::Block(b) | Stmt::Par(b) => b.iter().any(Stmt::contains_loop),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_loop(init: i64, cmp: CmpOp, bound: i64, step: i64) -> ForLoop {
        ForLoop {
            var: "i".into(),
            init: Expr::Int(init),
            cmp,
            bound: Expr::Int(bound),
            step,
            body: vec![],
        }
    }

    #[test]
    fn trip_count_lt() {
        assert_eq!(mk_loop(0, CmpOp::Lt, 10, 1).trip_count(), Some(10));
        assert_eq!(mk_loop(0, CmpOp::Lt, 10, 2).trip_count(), Some(5));
        assert_eq!(mk_loop(0, CmpOp::Lt, 9, 2).trip_count(), Some(5));
        assert_eq!(mk_loop(1, CmpOp::Lt, 1, 1).trip_count(), Some(0));
    }

    #[test]
    fn trip_count_le_and_down() {
        assert_eq!(mk_loop(1, CmpOp::Le, 10, 1).trip_count(), Some(10));
        assert_eq!(mk_loop(10, CmpOp::Gt, 0, -1).trip_count(), Some(10));
        assert_eq!(mk_loop(10, CmpOp::Ge, 0, -2).trip_count(), Some(6));
    }

    #[test]
    fn trip_count_bad_direction() {
        assert_eq!(mk_loop(0, CmpOp::Lt, 10, -1).trip_count(), None);
        assert_eq!(mk_loop(0, CmpOp::Lt, 10, 0).trip_count(), None);
    }

    #[test]
    fn desugar_compound() {
        let t = LValue::Var("s".into());
        let rhs = Stmt::desugared_rhs(&t, AssignOp::Add, &Expr::var("t"));
        assert_eq!(rhs, Expr::add(Expr::var("s"), Expr::var("t")));
    }

    #[test]
    fn contains_loop_nested() {
        let inner = Stmt::For(mk_loop(0, CmpOp::Lt, 3, 1));
        let s = Stmt::If {
            cond: Expr::Int(1),
            then_branch: vec![Stmt::Block(vec![inner])],
            else_branch: vec![],
        };
        assert!(s.contains_loop());
        assert!(!Stmt::Break.contains_loop());
    }
}
