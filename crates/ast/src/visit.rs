//! AST walking and rewriting utilities shared by every transformation.
//!
//! The three workhorses of SLMS all live here:
//!
//! * [`shift_induction`] — rewrite `i` to `i + k` inside a multi-instruction
//!   when it is placed in a kernel row belonging to iteration `i + k`
//!   (the paper's "changing the index of instructions while scheduling");
//! * [`substitute_scalar`] — replace a scalar by another expression, used by
//!   modulo variable expansion (rename `reg` → `reg2`) and scalar expansion
//!   (replace `reg` → `regArr[i + 2]`);
//! * [`simplify`] — constant folding and affine-index normalization so that
//!   shifted subscripts print as `A[i + 3]` rather than `A[(i + 1) + 2]`,
//!   keeping the output readable (a stated design goal of the paper).

use crate::expr::{BinOp, Expr, LValue};
use crate::stmt::{ForLoop, Stmt};

/// Visit every expression contained in `stmt` (pre-order over statements),
/// including loop headers, conditions and subscripts of assignment targets.
/// When `nested` is false, bodies of nested `for`/`while` loops are skipped
/// (used when treating inner loops as opaque).
pub fn for_each_expr<'a>(stmt: &'a Stmt, nested: bool, f: &mut impl FnMut(&'a Expr)) {
    match stmt {
        Stmt::Assign { target, value, .. } => {
            if let LValue::Index(_, idx) = target {
                for e in idx {
                    f(e);
                }
            }
            f(value);
        }
        Stmt::Call(_, args) => {
            for a in args {
                f(a);
            }
        }
        Stmt::Break => {}
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            f(cond);
            for s in then_branch.iter().chain(else_branch) {
                for_each_expr(s, nested, f);
            }
        }
        Stmt::For(fl) => {
            f(&fl.init);
            f(&fl.bound);
            if nested {
                for s in &fl.body {
                    for_each_expr(s, nested, f);
                }
            }
        }
        Stmt::While { cond, body } => {
            f(cond);
            if nested {
                for s in body {
                    for_each_expr(s, nested, f);
                }
            }
        }
        Stmt::Block(b) | Stmt::Par(b) => {
            for s in b {
                for_each_expr(s, nested, f);
            }
        }
    }
}

/// Mutable counterpart of [`for_each_expr`]: apply `f` to every expression
/// slot in `stmt`, always recursing into nested statement bodies.
pub fn map_exprs(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match stmt {
        Stmt::Assign { target, value, .. } => {
            if let LValue::Index(_, idx) = target {
                for e in idx {
                    f(e);
                }
            }
            f(value);
        }
        Stmt::Call(_, args) => {
            for a in args {
                f(a);
            }
        }
        Stmt::Break => {}
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            f(cond);
            for s in then_branch.iter_mut().chain(else_branch) {
                map_exprs(s, f);
            }
        }
        Stmt::For(fl) => {
            f(&mut fl.init);
            f(&mut fl.bound);
            for s in &mut fl.body {
                map_exprs(s, f);
            }
        }
        Stmt::While { cond, body } => {
            f(cond);
            for s in body {
                map_exprs(s, f);
            }
        }
        Stmt::Block(b) | Stmt::Par(b) => {
            for s in b {
                map_exprs(s, f);
            }
        }
    }
}

/// Recursively visit an expression tree (pre-order).
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Unary(_, a) => walk_expr(a, f),
        Expr::Binary(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Select(c, t, el) => {
            walk_expr(c, f);
            walk_expr(t, f);
            walk_expr(el, f);
        }
        Expr::Index(_, idx) => {
            for i in idx {
                walk_expr(i, f);
            }
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        _ => {}
    }
}

/// Rewrite an expression bottom-up: children first, then the node itself.
pub fn rewrite_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match e {
        Expr::Unary(_, a) => rewrite_expr(a, f),
        Expr::Binary(_, a, b) => {
            rewrite_expr(a, f);
            rewrite_expr(b, f);
        }
        Expr::Select(c, t, el) => {
            rewrite_expr(c, f);
            rewrite_expr(t, f);
            rewrite_expr(el, f);
        }
        Expr::Index(_, idx) => {
            for i in idx {
                rewrite_expr(i, f);
            }
        }
        Expr::Call(_, args) => {
            for a in args {
                rewrite_expr(a, f);
            }
        }
        _ => {}
    }
    f(e);
}

/// Constant folding plus affine normalization of `var ± const` chains.
///
/// Rewrites, bottom-up:
/// * `c1 op c2` → folded integer constant (for `+ - *`);
/// * `(e + c1) + c2` → `e + (c1+c2)` (and all `+/-` mixtures);
/// * `e + 0` / `e - 0` → `e`; `e * 1` → `e`; `e * 0` → `0` (int only);
/// * `c + e` → `e + c` (canonical constant-on-the-right) when `e` is not
///   itself constant.
pub fn simplify(e: &mut Expr) {
    rewrite_expr(e, &mut |node| {
        // fold pure integer arithmetic
        if let Expr::Binary(op, a, b) = node {
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) {
                if let (Some(x), Some(y)) = (a.const_int(), b.const_int()) {
                    let v = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        _ => unreachable!(),
                    };
                    *node = Expr::Int(v);
                    return;
                }
            }
        }
        // (e ± c1) ± c2  →  e ± (c1 + c2)
        if let Expr::Binary(op2, a, b) = node {
            let outer = match op2 {
                BinOp::Add => 1i64,
                BinOp::Sub => -1i64,
                _ => 0,
            };
            if outer != 0 {
                if let Some(c2) = b.const_int() {
                    if let Expr::Binary(op1, x, y) = a.as_mut() {
                        let inner = match op1 {
                            BinOp::Add => 1i64,
                            BinOp::Sub => -1i64,
                            _ => 0,
                        };
                        if inner != 0 {
                            if let Some(c1) = y.const_int() {
                                let total = inner * c1 + outer * c2;
                                let base = std::mem::replace(x.as_mut(), Expr::Int(0));
                                *node = add_const(base, total);
                                return;
                            }
                        }
                    }
                    // e + 0 → e
                    if c2 == 0 {
                        let base = std::mem::replace(a.as_mut(), Expr::Int(0));
                        *node = base;
                        return;
                    }
                    // e - c → e + (-c) canonical? Keep subtraction form (paper
                    // prints `A[i - 1]`), only normalize negative additions.
                    if *op2 == BinOp::Add && c2 < 0 {
                        let base = std::mem::replace(a.as_mut(), Expr::Int(0));
                        *node = add_const(base, c2);
                        return;
                    }
                }
                // c + e → e + c (only for Add; keeps constant on the right)
                if *op2 == BinOp::Add {
                    if let Some(c1) = a.const_int() {
                        if b.const_int().is_none() {
                            let base = std::mem::replace(b.as_mut(), Expr::Int(0));
                            *node = add_const(base, c1);
                            return;
                        }
                    }
                }
            }
            // multiplicative identities (integers only, division unsafe)
            if *op2 == BinOp::Mul {
                if b.const_int() == Some(1) {
                    *node = std::mem::replace(a.as_mut(), Expr::Int(0));
                    return;
                }
                if a.const_int() == Some(1) {
                    *node = std::mem::replace(b.as_mut(), Expr::Int(0));
                }
            }
        }
    });
}

/// `base + c` in canonical form (`base` when `c == 0`, subtraction for
/// negative `c`).
pub fn add_const(base: Expr, c: i64) -> Expr {
    if c == 0 {
        base
    } else if c > 0 {
        Expr::bin(BinOp::Add, base, Expr::Int(c))
    } else {
        Expr::bin(BinOp::Sub, base, Expr::Int(-c))
    }
}

/// Rewrite every read of induction variable `var` in `e` to `var + offset`,
/// then simplify. Array subscripts like `A[i + 1]` shifted by 2 become
/// `A[i + 3]`.
pub fn shift_induction_expr(e: &mut Expr, var: &str, offset: i64) {
    if offset == 0 {
        return;
    }
    rewrite_expr(e, &mut |node| {
        if let Expr::Var(n) = node {
            if n == var {
                *node = Expr::var_plus(var, offset);
            }
        }
    });
    simplify(e);
}

/// [`shift_induction_expr`] applied to every expression of a statement,
/// including assignment-target subscripts (`A[i] = ...` → `A[i + 2] = ...`).
pub fn shift_induction(stmt: &mut Stmt, var: &str, offset: i64) {
    if offset == 0 {
        return;
    }
    map_exprs(stmt, &mut |e| shift_induction_expr(e, var, offset));
}

/// Replace every occurrence of scalar `name` — reads *and* writes — by
/// `replacement`. The replacement must itself be usable as an l-value
/// (a `Var` or an `Index`) when `stmt` writes to `name`; other replacement
/// shapes panic on a write, which indicates a transformation bug.
pub fn substitute_scalar(stmt: &mut Stmt, name: &str, replacement: &Expr) {
    // writes
    rewrite_lvalues(stmt, &mut |lv| {
        if let LValue::Var(n) = lv {
            if n == name {
                *lv = match replacement {
                    Expr::Var(r) => LValue::Var(r.clone()),
                    Expr::Index(r, idx) => LValue::Index(r.clone(), idx.clone()),
                    other => panic!("cannot write through replacement {other:?}"),
                };
            }
        }
    });
    // reads
    map_exprs(stmt, &mut |e| {
        rewrite_expr(e, &mut |node| {
            if let Expr::Var(n) = node {
                if n == name {
                    *node = replacement.clone();
                }
            }
        });
        simplify(e);
    });
}

/// Apply `f` to every assignment target in `stmt` (recursing into nested
/// statements).
pub fn rewrite_lvalues(stmt: &mut Stmt, f: &mut impl FnMut(&mut LValue)) {
    match stmt {
        Stmt::Assign { target, .. } => f(target),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter_mut().chain(else_branch) {
                rewrite_lvalues(s, f);
            }
        }
        Stmt::For(ForLoop { body, .. }) | Stmt::While { body, .. } => {
            for s in body {
                rewrite_lvalues(s, f);
            }
        }
        Stmt::Block(b) | Stmt::Par(b) => {
            for s in b {
                rewrite_lvalues(s, f);
            }
        }
        Stmt::Break | Stmt::Call(..) => {}
    }
}

/// Rename scalar `old` to `new` (reads and writes) in one statement.
pub fn rename_scalar(stmt: &mut Stmt, old: &str, new: &str) {
    substitute_scalar(stmt, old, &Expr::Var(new.to_string()));
}

/// All scalar variable names *read* by the statement (no deduplication
/// guarantees beyond set semantics).
pub fn scalars_read(stmt: &Stmt) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for_each_expr(stmt, true, &mut |e| {
        walk_expr(e, &mut |node| {
            if let Expr::Var(n) = node {
                if !out.iter().any(|x| x == n) {
                    out.push(n.clone());
                }
            }
        });
    });
    out
}

/// All scalar variable names *written* by the statement.
pub fn scalars_written(stmt: &Stmt) -> Vec<String> {
    let mut out = Vec::new();
    collect_writes(stmt, &mut out);
    out
}

fn collect_writes(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Assign { target, .. } => {
            if let LValue::Var(n) = target {
                if !out.iter().any(|x| x == n) {
                    out.push(n.clone());
                }
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                collect_writes(s, out);
            }
        }
        Stmt::For(ForLoop { body, .. }) | Stmt::While { body, .. } => {
            for s in body {
                collect_writes(s, out);
            }
        }
        Stmt::Block(b) | Stmt::Par(b) => {
            for s in b {
                collect_writes(s, out);
            }
        }
        Stmt::Break | Stmt::Call(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_stmts};
    use crate::pretty::{expr_to_string, stmts_to_source};

    fn shift_src(src: &str, var: &str, k: i64) -> String {
        let mut s = parse_stmts(src).unwrap();
        shift_induction(&mut s[0], var, k);
        stmts_to_source(&s).trim().to_string()
    }

    #[test]
    fn shift_basic() {
        assert_eq!(
            shift_src("A[i] = A[i - 1] + A[i + 1];", "i", 2),
            "A[i + 2] = A[i + 1] + A[i + 3];"
        );
        assert_eq!(shift_src("A[i + 1] = 0;", "i", -1), "A[i] = 0;");
        assert_eq!(shift_src("A[i] = B[j];", "i", 3), "A[i + 3] = B[j];");
    }

    #[test]
    fn shift_through_scaled_subscript() {
        // A[2*i] shifted by 1 → A[2*(i+1)] = A[2*i + 2]? Our simplifier keeps
        // the product form `(i + 1) * 2` unless distributed; check it at
        // least stays semantically a shift.
        let out = shift_src("A[2 * i] = 0;", "i", 1);
        assert!(out.contains("i + 1"), "got {out}");
    }

    #[test]
    fn simplify_merges_offsets() {
        let mut e = parse_expr("(i + 1) + 2").unwrap();
        simplify(&mut e);
        assert_eq!(expr_to_string(&e), "i + 3");
        let mut e = parse_expr("(i + 1) - 3").unwrap();
        simplify(&mut e);
        assert_eq!(expr_to_string(&e), "i - 2");
        let mut e = parse_expr("(i - 1) + 1").unwrap();
        simplify(&mut e);
        assert_eq!(expr_to_string(&e), "i");
        let mut e = parse_expr("3 + i").unwrap();
        simplify(&mut e);
        assert_eq!(expr_to_string(&e), "i + 3");
    }

    #[test]
    fn simplify_identities() {
        for (src, want) in [
            ("x * 1", "x"),
            ("1 * x", "x"),
            ("x + 0", "x"),
            ("2 * 3", "6"),
        ] {
            let mut e = parse_expr(src).unwrap();
            simplify(&mut e);
            assert_eq!(expr_to_string(&e), want, "src={src}");
        }
    }

    #[test]
    fn substitute_scalar_read_and_write() {
        let mut s = parse_stmts("reg = A[i + 2]; x = reg * reg;").unwrap();
        let repl = parse_expr("regArr[i + 2]").unwrap();
        substitute_scalar(&mut s[0], "reg", &repl);
        substitute_scalar(&mut s[1], "reg", &repl);
        let out = stmts_to_source(&s);
        assert!(out.contains("regArr[i + 2] = A[i + 2];"), "got {out}");
        assert!(
            out.contains("x = regArr[i + 2] * regArr[i + 2];"),
            "got {out}"
        );
    }

    #[test]
    fn rename_scalar_in_if() {
        let mut s = parse_stmts("if (p < q) { p = q + 1; }").unwrap();
        rename_scalar(&mut s[0], "p", "p2");
        let out = stmts_to_source(&s);
        assert!(out.contains("if (p2 < q)"));
        assert!(out.contains("p2 = q + 1;"));
    }

    #[test]
    fn read_write_sets() {
        let s = &parse_stmts("x = y + A[z];").unwrap()[0].clone();
        let r = scalars_read(s);
        assert!(r.contains(&"y".to_string()) && r.contains(&"z".to_string()));
        assert!(!r.contains(&"x".to_string()));
        assert_eq!(scalars_written(s), vec!["x".to_string()]);
    }

    #[test]
    fn write_set_skips_array_targets() {
        let s = &parse_stmts("A[i] = 1;").unwrap()[0].clone();
        assert!(scalars_written(s).is_empty());
    }
}
