//! Pretty printer.
//!
//! Two output styles:
//!
//! * [`to_source`] — canonical, re-parsable form. Parallel groups print as
//!   `par { ... }`. Used for round-trip tests and for feeding SLMS output
//!   back into the tool chain (the SLC is source-to-source).
//! * [`to_paper_style`] — the notation used throughout the ICPP'06 paper:
//!   members of a parallel group are joined with ` || ` on one line. This is
//!   the human-facing "readable optimized code" the paper emphasizes.

use crate::expr::{BinOp, Expr, LValue, UnOp};
use crate::program::{Decl, Program, Ty};
use crate::stmt::{AssignOp, Stmt};
use std::fmt::Write;

/// Operator precedence for minimal parenthesization. Higher binds tighter.
fn prec(op: &BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Cmp(_) => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
    }
}

/// Render an expression with minimal parentheses.
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

fn write_expr(out: &mut String, e: &Expr, parent_prec: u8) {
    match e {
        Expr::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::Var(n) => out.push_str(n),
        Expr::Index(n, idx) => {
            out.push_str(n);
            for i in idx {
                out.push('[');
                write_expr(out, i, 0);
                out.push(']');
            }
        }
        Expr::Unary(op, inner) => {
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            // Unary binds tightest; parenthesize any non-atomic operand.
            // A negative literal or nested negation must also be wrapped:
            // `-(-14)` printed as `--14` would lex as the `--` token.
            let neg_clash = *op == UnOp::Neg
                && (matches!(
                    **inner,
                    Expr::Unary(UnOp::Neg, _) | Expr::Int(i64::MIN..=-1)
                ) || matches!(**inner, Expr::Float(v) if v.is_sign_negative()));
            let atomic = !neg_clash
                && matches!(
                    **inner,
                    Expr::Int(_) | Expr::Float(_) | Expr::Var(_) | Expr::Index(..) | Expr::Call(..)
                );
            if atomic {
                write_expr(out, inner, 0);
            } else {
                out.push('(');
                write_expr(out, inner, 0);
                out.push(')');
            }
        }
        Expr::Binary(op, a, b) => {
            let p = prec(op);
            let need = p < parent_prec;
            if need {
                out.push('(');
            }
            // Comparisons are *non-associative* in the grammar: a nested
            // comparison on either side must be parenthesized.
            let left_prec = if matches!(op, BinOp::Cmp(_)) {
                p + 1
            } else {
                p
            };
            write_expr(out, a, left_prec);
            let _ = write!(out, " {op} ");
            // Right operand of a left-associative operator needs parens at
            // equal precedence (a - (b - c)).
            write_expr(out, b, p + 1);
            if need {
                out.push(')');
            }
        }
        Expr::Select(c, t, f) => {
            out.push('(');
            write_expr(out, c, 0);
            out.push_str(" ? ");
            write_expr(out, t, 0);
            out.push_str(" : ");
            write_expr(out, f, 0);
            out.push(')');
        }
        Expr::Call(n, args) => {
            out.push_str(n);
            out.push('(');
            for (k, a) in args.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
    }
}

fn lvalue_to_string(lv: &LValue) -> String {
    expr_to_string(&lv.as_expr())
}

fn assign_op_str(op: AssignOp) -> &'static str {
    match op {
        AssignOp::Set => "=",
        AssignOp::Add => "+=",
        AssignOp::Sub => "-=",
        AssignOp::Mul => "*=",
        AssignOp::Div => "/=",
    }
}

/// Render a single statement on one logical line (no trailing newline) when
/// possible; nested blocks expand over multiple lines at `indent`.
fn write_stmt(out: &mut String, s: &Stmt, indent: usize, paper: bool) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign { target, op, value } => {
            let _ = writeln!(
                out,
                "{pad}{} {} {};",
                lvalue_to_string(target),
                assign_op_str(*op),
                expr_to_string(value)
            );
        }
        Stmt::Call(n, args) => {
            let _ = writeln!(
                out,
                "{pad}{};",
                expr_to_string(&Expr::Call(n.clone(), args.clone()))
            );
        }
        Stmt::Break => {
            let _ = writeln!(out, "{pad}break;");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", expr_to_string(cond));
            for st in then_branch {
                write_stmt(out, st, indent + 1, paper);
            }
            if else_branch.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for st in else_branch {
                    write_stmt(out, st, indent + 1, paper);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::For(f) => {
            let step = match f.step {
                1 => "++".to_string(),
                -1 => "--".to_string(),
                s if s > 0 => format!(" += {s}"),
                s => format!(" -= {}", -s),
            };
            let _ = writeln!(
                out,
                "{pad}for ({v} = {init}; {v} {cmp} {bound}; {v}{step}) {{",
                v = f.var,
                init = expr_to_string(&f.init),
                cmp = f.cmp,
                bound = expr_to_string(&f.bound),
            );
            for st in &f.body {
                write_stmt(out, st, indent + 1, paper);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while ({}) {{", expr_to_string(cond));
            for st in body {
                write_stmt(out, st, indent + 1, paper);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Block(body) => {
            let _ = writeln!(out, "{pad}{{");
            for st in body {
                write_stmt(out, st, indent + 1, paper);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Par(members) => {
            if paper {
                // Paper style: `MI1; || MI2; || MI3;` on a single line when
                // every member is a simple statement.
                let simple = members.iter().all(|m| {
                    matches!(m, Stmt::Assign { .. } | Stmt::Call(..) | Stmt::Break)
                        || matches!(m, Stmt::If { then_branch, else_branch, .. }
                            if then_branch.len() == 1 && else_branch.is_empty())
                });
                if simple {
                    let mut parts = Vec::new();
                    for m in members {
                        let mut piece = String::new();
                        write_stmt(&mut piece, m, 0, paper);
                        parts.push(piece.trim_end().to_string());
                    }
                    let _ = writeln!(out, "{pad}{}", parts.join(" || "));
                    return;
                }
            }
            let _ = writeln!(out, "{pad}par {{");
            for st in members {
                write_stmt(out, st, indent + 1, paper);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

fn write_decl(out: &mut String, d: &Decl) {
    let ty = match d.ty {
        Ty::Int => "int",
        Ty::Float => "float",
    };
    let _ = write!(out, "{ty} {}", d.name);
    for dim in &d.dims {
        let _ = write!(out, "[{dim}]");
    }
    out.push_str(";\n");
}

/// Canonical re-parsable source for a whole program.
pub fn to_source(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        write_decl(&mut out, d);
    }
    for s in &p.stmts {
        write_stmt(&mut out, s, 0, false);
    }
    out
}

/// Paper-style rendering (parallel groups as `...; || ...;`). Not guaranteed
/// to re-parse; intended for human inspection, examples and experiment logs.
pub fn to_paper_style(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        write_decl(&mut out, d);
    }
    for s in &p.stmts {
        write_stmt(&mut out, s, 0, true);
    }
    out
}

/// Render a statement list in canonical style (for diagnostics/tests).
pub fn stmts_to_source(stmts: &[Stmt]) -> String {
    let mut out = String::new();
    for s in stmts {
        write_stmt(&mut out, s, 0, false);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program, parse_stmts};

    fn rt(src: &str) {
        let p = parse_program(src).unwrap();
        let printed = to_source(&p);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2, "round trip failed for:\n{src}\nprinted:\n{printed}");
    }

    #[test]
    fn roundtrip_programs() {
        rt("float A[100]; for (i = 0; i < 100; i++) A[i] = A[i - 1] + A[i + 1];");
        rt("int x; if (x < 3) { x = 1; } else { x = 2; }");
        rt("float B[10]; par { B[0] = 1.0; B[1] = 2.0; }");
        rt("int i; while (i < 10) { i++; if (i == 5) break; }");
        rt("float X[8][8]; for (j = 0; j < 8; j++) for (i = 0; i < 8; i += 2) X[i][j] = 0.5;");
    }

    #[test]
    fn minimal_parens() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(expr_to_string(&e), "a + b * c");
        let e = parse_expr("(a + b) * c").unwrap();
        assert_eq!(expr_to_string(&e), "(a + b) * c");
        let e = parse_expr("a - (b - c)").unwrap();
        assert_eq!(expr_to_string(&e), "a - (b - c)");
        let e = parse_expr("a - b - c").unwrap();
        assert_eq!(expr_to_string(&e), "a - b - c");
    }

    #[test]
    fn paren_roundtrip_preserves_ast() {
        for src in [
            "a * (b + c) - d / (e - f)",
            "-(a + b)",
            "!(a < b) && c != d || e >= f",
            "x % 3 == 0 ? a[i] : b[i + 1]",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = expr_to_string(&e);
            let e2 = parse_expr(&printed).unwrap();
            assert_eq!(e, e2, "src={src} printed={printed}");
        }
    }

    #[test]
    fn paper_style_par_line() {
        let p = parse_program("float A[4]; float r; par { A[0] = r; r = A[3]; }").unwrap();
        let s = to_paper_style(&p);
        assert!(s.contains("A[0] = r; || r = A[3];"), "got:\n{s}");
    }

    #[test]
    fn paper_style_predicated_if_inline() {
        let stmts = parse_stmts("par { if (c) x = 1; y = 2; }").unwrap();
        let mut out = String::new();
        super::write_stmt(&mut out, &stmts[0], 0, true);
        assert!(out.contains("||"), "got {out}");
    }

    #[test]
    fn float_literal_forms() {
        assert_eq!(expr_to_string(&Expr::Float(2.0)), "2.0");
        assert_eq!(expr_to_string(&Expr::Float(0.25)), "0.25");
    }
}
