//! Recursive-descent parser for the mini language.
//!
//! Grammar sketch (see crate docs for the language rationale):
//!
//! ```text
//! program := (decl | stmt)*
//! decl    := ("int" | "float") name ("[" int "]")* ("," name ("[" int "]")*)* ";"
//! stmt    := "par" "{" stmt* "}"
//!          | "if" "(" expr ")" body ("else" body)?
//!          | "for" "(" name "=" expr ";" name cmp expr ";" step ")" body
//!          | "while" "(" expr ")" body
//!          | "break" ";"
//!          | "{" stmt* "}"
//!          | simple ";"
//! simple  := lvalue ("=" | "+=" | "-=" | "*=" | "/=") expr
//!          | lvalue "++" | lvalue "--"
//!          | name "(" args ")"
//! step    := name "++" | name "--" | name "+=" expr | name "-=" expr
//!          | name "=" name ("+" | "-") expr
//! ```
//!
//! Expressions use conventional C precedence:
//! `?:`  <  `||`  <  `&&`  <  comparisons  <  `+ -`  <  `* / %`  <  unary.

use crate::expr::{BinOp, CmpOp, Expr, LValue, UnOp};
use crate::lexer::{Lexer, Token};
use crate::program::{Decl, Program, Ty};
use crate::stmt::{AssignOp, ForLoop, Stmt};

/// A parse error with a human-readable message including the line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    toks: Vec<(Token, usize)>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn new(src: &str) -> PResult<Parser> {
        let toks = Lexer::new(src).tokenize().map_err(ParseError)?;
        Ok(Parser { toks, pos: 0 })
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].1
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].0.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Token) -> PResult<()> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(ParseError(format!(
                "line {}: expected `{}`, found `{}`",
                self.line(),
                t,
                self.peek()
            )))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError(format!(
                "line {}: expected identifier, found `{other}`",
                self.line()
            ))),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s == kw)
    }

    // ----- expressions -------------------------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        let cond = self.or_expr()?;
        if self.eat(&Token::Question) {
            let then_e = self.expr()?;
            self.expect(Token::Colon)?;
            let else_e = self.expr()?;
            return Ok(Expr::Select(
                Box::new(cond),
                Box::new(then_e),
                Box::new(else_e),
            ));
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut e = self.and_expr()?;
        while self.eat(&Token::OrOr) {
            let r = self.and_expr()?;
            e = Expr::bin(BinOp::Or, e, r);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut e = self.cmp_expr()?;
        while self.eat(&Token::AndAnd) {
            let r = self.cmp_expr()?;
            e = Expr::bin(BinOp::And, e, r);
        }
        Ok(e)
    }

    fn cmp_op(&self) -> Option<CmpOp> {
        match self.peek() {
            Token::Lt => Some(CmpOp::Lt),
            Token::Le => Some(CmpOp::Le),
            Token::Gt => Some(CmpOp::Gt),
            Token::Ge => Some(CmpOp::Ge),
            Token::EqEq => Some(CmpOp::Eq),
            Token::NotEq => Some(CmpOp::Ne),
            _ => None,
        }
    }

    fn cmp_expr(&mut self) -> PResult<Expr> {
        let e = self.add_expr()?;
        if let Some(op) = self.cmp_op() {
            self.bump();
            let r = self.add_expr()?;
            return Ok(Expr::bin(BinOp::Cmp(op), e, r));
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> PResult<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            e = Expr::bin(op, e, r);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> PResult<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let r = self.unary_expr()?;
            e = Expr::bin(op, e, r);
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> PResult<Expr> {
        if self.eat(&Token::Minus) {
            // Fold negated literals so `-1` round-trips as `Int(-1)`.
            return Ok(match self.unary_expr()? {
                Expr::Int(v) => Expr::Int(-v),
                Expr::Float(v) => Expr::Float(-v),
                inner => Expr::Unary(UnOp::Neg, Box::new(inner)),
            });
        }
        if self.eat(&Token::Bang) {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> PResult<Expr> {
        match self.bump() {
            Token::Int(v) => Ok(Expr::Int(v)),
            Token::Float(v) => Ok(Expr::Float(v)),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if *self.peek() == Token::LParen {
                    self.bump();
                    let args = self.call_args()?;
                    return Ok(Expr::Call(name, args));
                }
                let mut idx = Vec::new();
                while self.eat(&Token::LBracket) {
                    idx.push(self.expr()?);
                    self.expect(Token::RBracket)?;
                }
                if idx.is_empty() {
                    Ok(Expr::Var(name))
                } else {
                    Ok(Expr::Index(name, idx))
                }
            }
            other => Err(ParseError(format!(
                "line {}: expected expression, found `{other}`",
                self.line()
            ))),
        }
    }

    fn call_args(&mut self) -> PResult<Vec<Expr>> {
        let mut args = Vec::new();
        if self.eat(&Token::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(Token::RParen)?;
            return Ok(args);
        }
    }

    // ----- statements ---------------------------------------------------

    fn lvalue(&mut self) -> PResult<LValue> {
        let name = self.ident()?;
        let mut idx = Vec::new();
        while self.eat(&Token::LBracket) {
            idx.push(self.expr()?);
            self.expect(Token::RBracket)?;
        }
        if idx.is_empty() {
            Ok(LValue::Var(name))
        } else {
            Ok(LValue::Index(name, idx))
        }
    }

    /// Assignment, increment or call — without the trailing `;`.
    fn simple_stmt(&mut self) -> PResult<Stmt> {
        // Call statement: ident '(' ...
        if let Token::Ident(name) = self.peek().clone() {
            if self.toks.get(self.pos + 1).map(|t| &t.0) == Some(&Token::LParen) {
                self.bump();
                self.bump();
                let args = self.call_args()?;
                return Ok(Stmt::Call(name, args));
            }
        }
        let target = self.lvalue()?;
        let op = match self.bump() {
            Token::Assign => AssignOp::Set,
            Token::PlusAssign => AssignOp::Add,
            Token::MinusAssign => AssignOp::Sub,
            Token::StarAssign => AssignOp::Mul,
            Token::SlashAssign => AssignOp::Div,
            Token::PlusPlus => {
                return Ok(Stmt::Assign {
                    target,
                    op: AssignOp::Add,
                    value: Expr::Int(1),
                })
            }
            Token::MinusMinus => {
                return Ok(Stmt::Assign {
                    target,
                    op: AssignOp::Sub,
                    value: Expr::Int(1),
                })
            }
            other => {
                return Err(ParseError(format!(
                    "line {}: expected assignment operator, found `{other}`",
                    self.line()
                )))
            }
        };
        let value = self.expr()?;
        Ok(Stmt::Assign { target, op, value })
    }

    /// `for` header step clause: `i++`, `i--`, `i += k`, `i -= k`, `i = i + k`.
    fn for_step(&mut self, var: &str) -> PResult<i64> {
        let name = self.ident()?;
        if name != var {
            return Err(ParseError(format!(
                "line {}: for-loop step must update `{var}`, found `{name}`",
                self.line()
            )));
        }
        let bad = |l: usize| {
            ParseError(format!(
                "line {l}: for-loop step must be a constant additive update"
            ))
        };
        match self.bump() {
            Token::PlusPlus => Ok(1),
            Token::MinusMinus => Ok(-1),
            Token::PlusAssign => self.expr()?.const_int().ok_or_else(|| bad(self.line())),
            Token::MinusAssign => self
                .expr()?
                .const_int()
                .map(|v| -v)
                .ok_or_else(|| bad(self.line())),
            Token::Assign => {
                // i = i + k  or  i = i - k
                let e = self.expr()?;
                match e {
                    Expr::Binary(BinOp::Add, a, b) if *a == Expr::Var(var.to_string()) => {
                        b.const_int().ok_or_else(|| bad(self.line()))
                    }
                    Expr::Binary(BinOp::Sub, a, b) if *a == Expr::Var(var.to_string()) => {
                        b.const_int().map(|v| -v).ok_or_else(|| bad(self.line()))
                    }
                    _ => Err(bad(self.line())),
                }
            }
            _ => Err(bad(self.line())),
        }
    }

    fn body(&mut self) -> PResult<Vec<Stmt>> {
        if self.eat(&Token::LBrace) {
            let mut stmts = Vec::new();
            while !self.eat(&Token::RBrace) {
                if *self.peek() == Token::Eof {
                    return Err(ParseError(format!("line {}: unclosed block", self.line())));
                }
                stmts.push(self.stmt()?);
            }
            Ok(stmts)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        if self.is_kw("par") {
            self.bump();
            self.expect(Token::LBrace)?;
            let mut stmts = Vec::new();
            while !self.eat(&Token::RBrace) {
                if *self.peek() == Token::Eof {
                    return Err(ParseError(format!(
                        "line {}: unclosed par block",
                        self.line()
                    )));
                }
                stmts.push(self.stmt()?);
            }
            return Ok(Stmt::Par(stmts));
        }
        if self.is_kw("if") {
            self.bump();
            self.expect(Token::LParen)?;
            let cond = self.expr()?;
            self.expect(Token::RParen)?;
            let then_branch = self.body()?;
            let else_branch = if self.is_kw("else") {
                self.bump();
                self.body()?
            } else {
                vec![]
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.is_kw("for") {
            self.bump();
            self.expect(Token::LParen)?;
            let var = self.ident()?;
            self.expect(Token::Assign)?;
            let init = self.expr()?;
            self.expect(Token::Semi)?;
            let cvar = self.ident()?;
            if cvar != var {
                return Err(ParseError(format!(
                    "line {}: for-loop condition must test `{var}`",
                    self.line()
                )));
            }
            let cmp = self.cmp_op().ok_or_else(|| {
                ParseError(format!(
                    "line {}: for-loop condition must be a comparison",
                    self.line()
                ))
            })?;
            self.bump();
            let bound = self.expr()?;
            self.expect(Token::Semi)?;
            let step = self.for_step(&var)?;
            self.expect(Token::RParen)?;
            let body = self.body()?;
            return Ok(Stmt::For(ForLoop {
                var,
                init,
                cmp,
                bound,
                step,
                body,
            }));
        }
        if self.is_kw("while") {
            self.bump();
            self.expect(Token::LParen)?;
            let cond = self.expr()?;
            self.expect(Token::RParen)?;
            let body = self.body()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.is_kw("break") {
            self.bump();
            self.expect(Token::Semi)?;
            return Ok(Stmt::Break);
        }
        if *self.peek() == Token::LBrace {
            self.bump();
            let mut stmts = Vec::new();
            while !self.eat(&Token::RBrace) {
                if *self.peek() == Token::Eof {
                    return Err(ParseError(format!("line {}: unclosed block", self.line())));
                }
                stmts.push(self.stmt()?);
            }
            return Ok(Stmt::Block(stmts));
        }
        let s = self.simple_stmt()?;
        self.expect(Token::Semi)?;
        Ok(s)
    }

    fn ty(&mut self) -> Option<Ty> {
        match self.peek() {
            Token::Ident(s) if s == "int" => Some(Ty::Int),
            Token::Ident(s) if s == "float" || s == "double" => Some(Ty::Float),
            _ => None,
        }
    }

    fn decl_group(&mut self, ty: Ty, out: &mut Vec<Decl>) -> PResult<()> {
        loop {
            let name = self.ident()?;
            let mut dims = Vec::new();
            while self.eat(&Token::LBracket) {
                let d = self.expr()?.const_int().ok_or_else(|| {
                    ParseError(format!(
                        "line {}: array dimension must be a constant",
                        self.line()
                    ))
                })?;
                if d <= 0 {
                    return Err(ParseError(format!(
                        "line {}: array dimension must be positive",
                        self.line()
                    )));
                }
                dims.push(d as usize);
                self.expect(Token::RBracket)?;
            }
            out.push(Decl { name, ty, dims });
            if self.eat(&Token::Comma) {
                continue;
            }
            self.expect(Token::Semi)?;
            return Ok(());
        }
    }

    fn program(&mut self) -> PResult<Program> {
        let mut p = Program::new();
        while *self.peek() != Token::Eof {
            if let Some(ty) = self.ty() {
                self.bump();
                self.decl_group(ty, &mut p.decls)?;
            } else {
                p.stmts.push(self.stmt()?);
            }
        }
        Ok(p)
    }
}

/// Parse a complete program (declarations + statements).
///
/// ```
/// use slc_ast::{parse_program, to_source};
///
/// let p = parse_program("float A[8]; int i; for (i = 0; i < 8; i++) A[i] = i * 2;").unwrap();
/// assert_eq!(p.decls.len(), 2);
/// // printing and re-parsing round-trips
/// assert_eq!(parse_program(&to_source(&p)).unwrap(), p);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.program()
}

/// Parse a statement list (no declarations). Handy in tests.
pub fn parse_stmts(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut stmts = Vec::new();
    while *p.peek() != Token::Eof {
        stmts.push(p.stmt()?);
    }
    Ok(stmts)
}

/// Parse a single expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    if *p.peek() != Token::Eof {
        return Err(ParseError(format!(
            "line {}: trailing input after expression",
            p.line()
        )));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.const_int(), Some(7));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.const_int(), Some(9));
    }

    #[test]
    fn comparison_binds_looser_than_arith() {
        let e = parse_expr("a + 1 < b * 2").unwrap();
        match e {
            Expr::Binary(BinOp::Cmp(CmpOp::Lt), _, _) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn ternary() {
        let e = parse_expr("a < b ? x : y").unwrap();
        assert!(matches!(e, Expr::Select(..)));
    }

    #[test]
    fn for_loop_forms() {
        for src in [
            "for (i = 0; i < n; i++) x = 1;",
            "for (i = 0; i < n; i += 2) x = 1;",
            "for (i = n; i > 0; i--) x = 1;",
            "for (i = 0; i < n; i = i + 1) x = 1;",
            "for (i = n; i >= 0; i = i - 3) x = 1;",
        ] {
            let s = parse_stmts(src).unwrap();
            assert!(matches!(s[0], Stmt::For(_)), "failed: {src}");
        }
    }

    #[test]
    fn for_step_values() {
        let s = parse_stmts("for (i = 0; i < n; i += 2) x = 1;").unwrap();
        if let Stmt::For(f) = &s[0] {
            assert_eq!(f.step, 2);
        } else {
            panic!()
        }
        let s = parse_stmts("for (i = n; i >= 0; i = i - 3) x = 1;").unwrap();
        if let Stmt::For(f) = &s[0] {
            assert_eq!(f.step, -3);
        } else {
            panic!()
        }
    }

    #[test]
    fn compound_assignment_and_incr() {
        let s = parse_stmts("a[i] += x; b--; c *= 2;").unwrap();
        assert_eq!(s.len(), 3);
        assert!(matches!(
            s[1],
            Stmt::Assign {
                op: AssignOp::Sub,
                ..
            }
        ));
    }

    #[test]
    fn if_else_and_par() {
        let s = parse_stmts("if (x < y) { x = x + 1; } else y = y + 1;").unwrap();
        assert!(matches!(&s[0], Stmt::If { else_branch, .. } if else_branch.len() == 1));
        let s = parse_stmts("par { a = 1; b = 2; }").unwrap();
        assert!(matches!(&s[0], Stmt::Par(v) if v.len() == 2));
    }

    #[test]
    fn declarations() {
        let p = parse_program("float A[10][20]; int i, j, k; double z;").unwrap();
        assert_eq!(p.decls.len(), 5);
        assert_eq!(p.decl("A").unwrap().dims, vec![10, 20]);
        assert_eq!(p.decl("j").unwrap().ty, Ty::Int);
        assert_eq!(p.decl("z").unwrap().ty, Ty::Float);
    }

    #[test]
    fn rejects_nonconstant_dimension() {
        assert!(parse_program("float A[n];").is_err());
        assert!(parse_program("float A[0];").is_err());
    }

    #[test]
    fn rejects_malformed_for() {
        assert!(parse_stmts("for (i = 0; j < n; i++) x = 1;").is_err());
        assert!(parse_stmts("for (i = 0; i < n; j++) x = 1;").is_err());
        assert!(parse_stmts("for (i = 0; i < n; i *= 2) x = 1;").is_err());
    }

    #[test]
    fn call_stmt_and_expr() {
        let s = parse_stmts("f(x, A[i]); y = g();").unwrap();
        assert!(matches!(&s[0], Stmt::Call(n, a) if n == "f" && a.len() == 2));
        assert!(matches!(
            &s[1],
            Stmt::Assign {
                value: Expr::Call(_, _),
                ..
            }
        ));
    }

    #[test]
    fn while_and_break() {
        let s = parse_stmts("while (a[i + 2]) { a[i] = a[i + 2]; i++; break; }").unwrap();
        assert!(matches!(&s[0], Stmt::While { body, .. } if body.len() == 3));
    }

    #[test]
    fn error_reports_line() {
        let err = parse_stmts("x = 1;\ny = ;").unwrap_err();
        assert!(err.0.contains("line 2"), "got: {err}");
    }
}
