//! Top-level programs: declarations plus a statement list.

use crate::stmt::Stmt;

/// Element type of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
}

/// A variable declaration: scalar (`dims` empty) or array.
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: Ty,
    /// Array dimensions; empty for scalars.
    pub dims: Vec<usize>,
}

impl Decl {
    /// Scalar declaration.
    pub fn scalar(name: impl Into<String>, ty: Ty) -> Decl {
        Decl {
            name: name.into(),
            ty,
            dims: vec![],
        }
    }

    /// Array declaration.
    pub fn array(name: impl Into<String>, ty: Ty, dims: Vec<usize>) -> Decl {
        Decl {
            name: name.into(),
            ty,
            dims,
        }
    }

    /// True for array declarations.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }

    /// True when the declaration has no dimensions *and* is treated as a
    /// scalar (always false for arrays).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A complete mini-language program: declarations followed by statements.
///
/// The namespace is flat (as in Tiny): all variables are global, and any
/// temporary introduced by a transformation must be registered through
/// [`Program::ensure_scalar`] / [`Program::ensure_array`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All declarations, in declaration order.
    pub decls: Vec<Decl>,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Look up a declaration by name.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// Register a scalar declaration if the name is not yet declared.
    /// Returns the name for chaining.
    pub fn ensure_scalar(&mut self, name: &str, ty: Ty) -> String {
        if self.decl(name).is_none() {
            self.decls.push(Decl::scalar(name, ty));
        }
        name.to_string()
    }

    /// Register an array declaration if the name is not yet declared.
    pub fn ensure_array(&mut self, name: &str, ty: Ty, dims: Vec<usize>) -> String {
        if self.decl(name).is_none() {
            self.decls.push(Decl::array(name, ty, dims));
        }
        name.to_string()
    }

    /// A fresh variable name with the given prefix that collides with no
    /// existing declaration (`reg1`, `reg2`, ... in the paper's output).
    pub fn fresh_name(&self, prefix: &str) -> String {
        let mut k = 1usize;
        loop {
            let cand = format!("{prefix}{k}");
            if self.decl(&cand).is_none() {
                return cand;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_names_skip_taken() {
        let mut p = Program::new();
        p.ensure_scalar("reg1", Ty::Float);
        p.ensure_scalar("reg2", Ty::Float);
        assert_eq!(p.fresh_name("reg"), "reg3");
        assert_eq!(p.fresh_name("t"), "t1");
    }

    #[test]
    fn ensure_is_idempotent() {
        let mut p = Program::new();
        p.ensure_array("A", Ty::Float, vec![10]);
        p.ensure_array("A", Ty::Float, vec![10]);
        assert_eq!(p.decls.len(), 1);
        assert!(p.decl("A").unwrap().is_array());
        assert_eq!(p.decl("A").unwrap().len(), 10);
    }
}
