//! Stable loop identity.
//!
//! Every diagnostic the SLC emits must name *which* loop it talks about in
//! a way that survives re-running the pipeline, reordering passes, and
//! printing for a human. A [`LoopId`] captures the three facts that
//! identify a loop in this workspace's programs: the induction variable,
//! the loop's position in a pre-order walk of the program's innermost
//! loops, and the body length (a cheap shape check that catches "same
//! variable, different loop" confusions after restructuring).
//!
//! The `Display` form intentionally matches the legacy
//! `for (i = …) [2 stmts]` description string the per-loop reports used
//! before diagnostics became structured, so `slc --report` output stays
//! familiar.

use crate::stmt::{ForLoop, Stmt};

/// Identity of one loop inside a program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopId {
    /// Induction variable name.
    pub var: String,
    /// Position of the loop in a pre-order walk of the program's
    /// innermost `for` loops (0-based).
    pub stmt_index: usize,
    /// Number of statements in the loop body when the id was taken.
    pub body_len: usize,
}

impl LoopId {
    /// Identify a loop from its AST node and walk position.
    pub fn of(f: &ForLoop, stmt_index: usize) -> Self {
        LoopId {
            var: f.var.clone(),
            stmt_index,
            body_len: f.body.len(),
        }
    }

    /// Long form including the walk index (`loop#1 for (i = …) [2 stmts]`),
    /// used by decision traces where several loops share a variable name.
    pub fn verbose(&self) -> String {
        format!("loop#{} {}", self.stmt_index, self)
    }

    /// Machine-readable identity, the `"loop"` member of every object
    /// `slc explain --json` emits. Field names are part of the stable
    /// output contract: `var`, `index`, `body_len`.
    pub fn to_json(&self) -> slc_trace::Json {
        slc_trace::Json::obj()
            .field("var", self.var.as_str())
            .field("index", self.stmt_index)
            .field("body_len", self.body_len)
    }
}

impl std::fmt::Display for LoopId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "for ({} = …) [{} stmts]", self.var, self.body_len)
    }
}

/// Collect the [`LoopId`] of every innermost `for` loop of a statement
/// list, in the same pre-order the SLMS program driver visits them.
pub fn innermost_loop_ids(stmts: &[Stmt]) -> Vec<LoopId> {
    fn walk(stmts: &[Stmt], next: &mut usize, out: &mut Vec<LoopId>) {
        for s in stmts {
            match s {
                Stmt::For(f) => {
                    if f.body.iter().any(Stmt::contains_loop) {
                        walk(&f.body, next, out);
                    } else {
                        out.push(LoopId::of(f, *next));
                        *next += 1;
                    }
                }
                Stmt::Block(b) => walk(b, next, out),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, next, out);
                    walk(else_branch, next, out);
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    let mut next = 0;
    walk(stmts, &mut next, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn display_matches_legacy_description() {
        let p =
            parse_program("float A[8]; int i; for (i = 0; i < 4; i++) { A[i] = 1.0; A[i] = 2.0; }")
                .unwrap();
        let ids = innermost_loop_ids(&p.stmts);
        assert_eq!(ids.len(), 1);
        assert_eq!(ids[0].to_string(), "for (i = …) [2 stmts]");
        assert_eq!(ids[0].verbose(), "loop#0 for (i = …) [2 stmts]");
    }

    #[test]
    fn nested_and_sibling_loops_numbered_in_preorder() {
        let p = parse_program(
            "float A[8][8]; float B[8]; int i; int j;\n\
             for (i = 0; i < 8; i++) for (j = 0; j < 8; j++) A[i][j] = 1.0;\n\
             for (i = 0; i < 8; i++) B[i] = 2.0;",
        )
        .unwrap();
        let ids = innermost_loop_ids(&p.stmts);
        assert_eq!(ids.len(), 2);
        assert_eq!((ids[0].var.as_str(), ids[0].stmt_index), ("j", 0));
        assert_eq!((ids[1].var.as_str(), ids[1].stmt_index), ("i", 1));
    }
}
