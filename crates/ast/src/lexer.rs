//! Hand-written lexer for the mini language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// identifier or keyword
    Ident(String),
    /// integer literal
    Int(i64),
    /// float literal (contains `.` or exponent)
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// end of input
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            other => {
                let s = match other {
                    Token::LParen => "(",
                    Token::RParen => ")",
                    Token::LBracket => "[",
                    Token::RBracket => "]",
                    Token::LBrace => "{",
                    Token::RBrace => "}",
                    Token::Semi => ";",
                    Token::Comma => ",",
                    Token::Question => "?",
                    Token::Colon => ":",
                    Token::Plus => "+",
                    Token::Minus => "-",
                    Token::Star => "*",
                    Token::Slash => "/",
                    Token::Percent => "%",
                    Token::Bang => "!",
                    Token::Assign => "=",
                    Token::PlusAssign => "+=",
                    Token::MinusAssign => "-=",
                    Token::StarAssign => "*=",
                    Token::SlashAssign => "/=",
                    Token::PlusPlus => "++",
                    Token::MinusMinus => "--",
                    Token::EqEq => "==",
                    Token::NotEq => "!=",
                    Token::Lt => "<",
                    Token::Le => "<=",
                    Token::Gt => ">",
                    Token::Ge => ">=",
                    Token::AndAnd => "&&",
                    Token::OrOr => "||",
                    Token::Eof => "<eof>",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// Streaming lexer: produces [`Token`]s with line numbers for error
/// reporting. Supports `//` line comments and `/* */` block comments.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    /// Current 1-based line number, updated as input is consumed.
    pub line: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn skip_trivia(&mut self) -> Result<(), String> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return Err(format!("line {}: unterminated block comment", self.line));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<Token, String> {
        self.skip_trivia()?;
        let c = self.peek();
        if c == 0 {
            return Ok(Token::Eof);
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                self.bump();
            }
            let s = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            return Ok(Token::Ident(s.to_string()));
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            while self.peek().is_ascii_digit() {
                self.bump();
            }
            let mut is_float = false;
            if self.peek() == b'.' && self.peek2().is_ascii_digit() {
                is_float = true;
                self.bump();
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            }
            if self.peek() == b'e' || self.peek() == b'E' {
                let save = self.pos;
                self.bump();
                if self.peek() == b'+' || self.peek() == b'-' {
                    self.bump();
                }
                if self.peek().is_ascii_digit() {
                    is_float = true;
                    while self.peek().is_ascii_digit() {
                        self.bump();
                    }
                } else {
                    self.pos = save;
                }
            }
            let s = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            return if is_float {
                s.parse::<f64>()
                    .map(Token::Float)
                    .map_err(|e| format!("line {}: bad float literal {s}: {e}", self.line))
            } else {
                s.parse::<i64>()
                    .map(Token::Int)
                    .map_err(|e| format!("line {}: bad int literal {s}: {e}", self.line))
            };
        }
        self.bump();
        let two = |l: &mut Lexer<'a>, tok| {
            l.bump();
            Ok(tok)
        };
        match (c, self.peek()) {
            (b'+', b'+') => two(self, Token::PlusPlus),
            (b'+', b'=') => two(self, Token::PlusAssign),
            (b'-', b'-') => two(self, Token::MinusMinus),
            (b'-', b'=') => two(self, Token::MinusAssign),
            (b'*', b'=') => two(self, Token::StarAssign),
            (b'/', b'=') => two(self, Token::SlashAssign),
            (b'=', b'=') => two(self, Token::EqEq),
            (b'!', b'=') => two(self, Token::NotEq),
            (b'<', b'=') => two(self, Token::Le),
            (b'>', b'=') => two(self, Token::Ge),
            (b'&', b'&') => two(self, Token::AndAnd),
            (b'|', b'|') => two(self, Token::OrOr),
            (b'+', _) => Ok(Token::Plus),
            (b'-', _) => Ok(Token::Minus),
            (b'*', _) => Ok(Token::Star),
            (b'/', _) => Ok(Token::Slash),
            (b'%', _) => Ok(Token::Percent),
            (b'!', _) => Ok(Token::Bang),
            (b'=', _) => Ok(Token::Assign),
            (b'<', _) => Ok(Token::Lt),
            (b'>', _) => Ok(Token::Gt),
            (b'(', _) => Ok(Token::LParen),
            (b')', _) => Ok(Token::RParen),
            (b'[', _) => Ok(Token::LBracket),
            (b']', _) => Ok(Token::RBracket),
            (b'{', _) => Ok(Token::LBrace),
            (b'}', _) => Ok(Token::RBrace),
            (b';', _) => Ok(Token::Semi),
            (b',', _) => Ok(Token::Comma),
            (b'?', _) => Ok(Token::Question),
            (b':', _) => Ok(Token::Colon),
            _ => Err(format!(
                "line {}: unexpected character {:?}",
                self.line, c as char
            )),
        }
    }

    /// Lex the whole input into a vector (final element is [`Token::Eof`]).
    pub fn tokenize(mut self) -> Result<Vec<(Token, usize)>, String> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let line = self.line;
            let t = self.next_token()?;
            let done = t == Token::Eof;
            out.push((t, line));
            if done {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<Token> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let t = lex("for (i = 0; i < n; i++) { A[i] += 2.5; }");
        assert!(t.contains(&Token::Ident("for".into())));
        assert!(t.contains(&Token::PlusPlus));
        assert!(t.contains(&Token::PlusAssign));
        assert!(t.contains(&Token::Float(2.5)));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn comments_skipped() {
        let t = lex("x // trailing\n /* block\n comment */ = 1;");
        assert_eq!(
            t,
            vec![
                Token::Ident("x".into()),
                Token::Assign,
                Token::Int(1),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn float_exponent_forms() {
        assert_eq!(lex("1e3")[0], Token::Float(1000.0));
        assert_eq!(lex("2.5e-1")[0], Token::Float(0.25));
        // `e` not followed by digits is left as separate tokens
        let t = lex("1 e");
        assert_eq!(t[0], Token::Int(1));
        assert_eq!(t[1], Token::Ident("e".into()));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(lex("<=")[0], Token::Le);
        assert_eq!(lex("!=")[0], Token::NotEq);
        assert_eq!(lex("&&")[0], Token::AndAnd);
        assert_eq!(lex("||")[0], Token::OrOr);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(Lexer::new("/* nope").tokenize().is_err());
    }

    #[test]
    fn line_numbers_advance() {
        let toks = Lexer::new("x\n\ny").tokenize().unwrap();
        assert_eq!(toks[0].1, 1);
        assert_eq!(toks[1].1, 3);
    }
}
