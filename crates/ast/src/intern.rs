//! String interning for hot-path consumers of the AST.
//!
//! The AST itself keeps `String` names — they are cheap at parse/transform
//! time and keep `Program`'s structural equality and fingerprints stable.
//! Interpreters and simulators, however, touch names once per loop *trip*
//! (millions of times per batch run), where `HashMap<String, _>` lookups and
//! `clone()`s dominate. They intern every name once up front and then index
//! flat `Vec` frames by [`Symbol`].
//!
//! The interner is deliberately minimal: append-only, no external deps, and
//! `Symbol` is a plain `u32` newtype so it can key dense vectors directly.

use std::collections::HashMap;

/// An interned name: an index into the owning [`Interner`]'s table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol's dense index, for `Vec` frame addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only symbol table mapping names to dense [`Symbol`] ids.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    names: Vec<String>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its symbol (stable across repeated calls).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    /// Look up a name without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The name behind a symbol.
    pub fn resolve(&self, s: Symbol) -> &str {
        &self.names[s.index()]
    }

    /// Number of interned symbols (also the frame size needed to index all
    /// symbols issued so far).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut it = Interner::new();
        let a = it.intern("a");
        let b = it.intern("b");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(it.intern("a"), a);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(b), "b");
        assert_eq!(it.get("c"), None);
    }
}
