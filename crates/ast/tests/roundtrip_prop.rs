//! Property: print→parse is idempotent. Arbitrary generated ASTs may be
//! non-canonical (e.g. `Neg(Int(0))`, which the parser folds to `Int(0)`),
//! so the property is stated on canonical forms: one print→parse pass
//! normalizes, after which printing and re-parsing must reproduce the AST
//! exactly.

use proptest::prelude::*;
use slc_ast::{
    parse_program, to_source, BinOp, CmpOp, Decl, Expr, ForLoop, LValue, Program, Stmt, Ty,
};

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Expr::Int),
        (0u8..4).prop_map(|k| Expr::Float([0.5, 2.0, 3.25, 100.0][k as usize])),
        Just(Expr::var("x")),
        Just(Expr::var("y")),
        Just(Expr::idx("A", Expr::var("i"))),
        Just(Expr::idx("A", Expr::add(Expr::var("i"), Expr::Int(2)))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0u8..5).prop_map(|(a, b, k)| {
                let op = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Cmp(CmpOp::Lt),
                ][k as usize];
                Expr::bin(op, a, b)
            }),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(slc_ast::UnOp::Neg, Box::new(a))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| Expr::Select(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        expr_strategy().prop_map(|e| Stmt::assign(LValue::Var("x".into()), e)),
        expr_strategy()
            .prop_map(|e| Stmt::assign(LValue::Index("A".into(), vec![Expr::var("i")]), e)),
    ];
    simple.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                proptest::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(c, body)| Stmt::If {
                    cond: c,
                    then_branch: body,
                    else_branch: vec![],
                }),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Stmt::Par),
            (0i64..10, 1i64..20, proptest::collection::vec(inner, 1..3)).prop_map(
                |(lo, span, body)| Stmt::For(ForLoop {
                    var: "i".into(),
                    init: Expr::Int(lo),
                    cmp: CmpOp::Lt,
                    bound: Expr::Int(lo + span),
                    step: 1,
                    body,
                })
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn print_parse_roundtrip(stmts in proptest::collection::vec(stmt_strategy(), 1..6)) {
        let prog = Program {
            decls: vec![
                Decl::array("A", Ty::Float, vec![64]),
                Decl::scalar("x", Ty::Float),
                Decl::scalar("y", Ty::Float),
                Decl::scalar("i", Ty::Int),
            ],
            stmts,
        };
        // normalize: any generated AST must at least parse back
        let printed = to_source(&prog);
        let canonical = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // canonical forms round-trip exactly
        let printed2 = to_source(&canonical);
        let reparsed = parse_program(&printed2)
            .unwrap_or_else(|e| panic!("second reparse failed: {e}\n{printed2}"));
        prop_assert_eq!(&reparsed, &canonical, "roundtrip mismatch:\n{}", printed2);
    }
}
