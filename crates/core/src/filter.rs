//! Bad-case filtering (§4).
//!
//! SLMS can *reduce* performance when the loop is dominated by memory
//! references: overlapping iterations then packs too many loads/stores into
//! one row and the machine stalls on memory pressure. The paper's filter
//! skips loops whose memory-ref ratio `LS / (LS + AO)` is ≥ 0.85; the
//! conclusions add a second heuristic — loops with at least six arithmetic
//! operations per array reference are almost never bad cases, so a
//! *minimum* arithmetic density can be demanded. Both thresholds are
//! machine-specific knobs in [`FilterConfig`].

use slc_analysis::memref::op_counts;
use slc_ast::Stmt;

/// Thresholds of the bad-case filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterConfig {
    /// Skip the loop when `LS/(LS+AO)` is at or above this value
    /// (paper value: 0.85).
    pub max_memref_ratio: f64,
    /// When `Some(r)`, additionally require at least `r` arithmetic
    /// operations per load/store (the conclusion's "six arithmetic
    /// operations per array reference" rule, off by default).
    pub min_arith_per_ref: Option<f64>,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            max_memref_ratio: 0.85,
            min_arith_per_ref: None,
        }
    }
}

/// Why a loop was rejected by the filter.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterVerdict {
    /// The loop passes; SLMS may proceed.
    Pass,
    /// Memory-ref ratio at/above threshold.
    MemRefRatio {
        /// measured ratio
        ratio: f64,
        /// configured threshold
        threshold: f64,
    },
    /// Not enough arithmetic per memory reference.
    LowArithDensity {
        /// measured arithmetic ops per load/store
        density: f64,
        /// configured minimum
        min: f64,
    },
}

impl FilterVerdict {
    /// True when the loop passed.
    pub fn passed(&self) -> bool {
        matches!(self, FilterVerdict::Pass)
    }
}

impl std::fmt::Display for FilterVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterVerdict::Pass => write!(f, "passed the §4 filter"),
            FilterVerdict::MemRefRatio { ratio, threshold } => write!(
                f,
                "memory-ref ratio LS/(LS+AO) = {ratio:.3} ≥ threshold {threshold:.2}"
            ),
            FilterVerdict::LowArithDensity { density, min } => write!(
                f,
                "arithmetic density {density:.3} ops/ref below minimum {min:.2}"
            ),
        }
    }
}

/// Apply the §4 filter to a loop body.
pub fn filter_loop(body: &[Stmt], var: &str, cfg: &FilterConfig) -> FilterVerdict {
    let c = op_counts(body, var);
    let ratio = c.memref_ratio();
    if ratio >= cfg.max_memref_ratio {
        return FilterVerdict::MemRefRatio {
            ratio,
            threshold: cfg.max_memref_ratio,
        };
    }
    if let Some(min) = cfg.min_arith_per_ref {
        let density = if c.ls == 0 {
            f64::INFINITY
        } else {
            c.ao as f64 / c.ls as f64
        };
        if density < min {
            return FilterVerdict::LowArithDensity { density, min };
        }
    }
    FilterVerdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_stmts;

    #[test]
    fn swap_loop_filtered() {
        let body = parse_stmts("CT = X[k][i]; X[k][i] = X[k][j] * 2.0; X[k][j] = CT;").unwrap();
        let v = filter_loop(&body, "k", &FilterConfig::default());
        assert!(matches!(v, FilterVerdict::MemRefRatio { .. }), "{v:?}");
    }

    #[test]
    fn dot_product_passes() {
        let body = parse_stmts("t = A[i] * B[i]; s = s + t;").unwrap();
        assert!(filter_loop(&body, "i", &FilterConfig::default()).passed());
    }

    #[test]
    fn density_rule() {
        let cfg = FilterConfig {
            max_memref_ratio: 0.85,
            min_arith_per_ref: Some(1.0),
        };
        // ratio 3/5 = 0.6 passes the memref filter, density 2/3 < 1 fails
        let body = parse_stmts("A[i] = B[i] + C[i];").unwrap();
        assert!(matches!(
            filter_loop(&body, "i", &cfg),
            FilterVerdict::LowArithDensity { .. }
        ));
        // 5 refs, 5 ops → density 1.0 passes
        let body = parse_stmts("A[i] = B[i] * B[i] * B[i] + 2.0 * B[i] + 1.0;").unwrap();
        assert!(filter_loop(&body, "i", &cfg).passed());
    }
}
