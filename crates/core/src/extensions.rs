//! §10 extensions: SLMS beyond simple counted loops.
//!
//! The paper sketches two extensions "via examples" and leaves full
//! implementations as future work; this module implements both as working
//! transformations with interpreter-verified semantics:
//!
//! * [`unroll_while`] — generalized while-loop unrolling (Huang & Leng):
//!   the body is replicated `factor` times with an early-exit re-check
//!   between copies. The result is semantically identity for *any* while
//!   loop, and gives downstream scheduling (source- or machine-level) a
//!   bigger straight-line region exactly like the paper's shifted-string-
//!   copy example.
//! * [`frequent_path_ms`] — modulo scheduling focused on the most frequent
//!   path of `for (…) { if (A) B; else C; D; }` (profile-directed, §10's
//!   second extension). The frequent path `A;B;D` is pipelined one
//!   iteration deep (kernel `D_i ‖ A_{i+1}…`), and whenever `A` fails the
//!   pipeline drains into the original slow path and restarts — the
//!   schematic of the paper's Figure 23, realized as a concrete AST
//!   rewrite.

use crate::SlmsError;
use slc_ast::visit::{map_exprs, shift_induction, simplify, substitute_scalar};
use slc_ast::{CmpOp, Expr, ForLoop, LValue, Program, Stmt, Ty, UnOp};

/// Unroll a `while` loop by `factor`: copies are separated by
/// `if (!cond) break;` re-checks, preserving semantics for arbitrary
/// conditions and bodies.
pub fn unroll_while(stmt: &Stmt, factor: usize) -> Result<Stmt, SlmsError> {
    let Stmt::While { cond, body } = stmt else {
        return Err(SlmsError::NotAForLoop);
    };
    if factor < 2 {
        return Err(SlmsError::NoValidIi);
    }
    let mut new_body = Vec::new();
    for c in 0..factor {
        if c > 0 {
            new_body.push(Stmt::If {
                cond: Expr::Unary(UnOp::Not, Box::new(cond.clone())),
                then_branch: vec![Stmt::Break],
                else_branch: vec![],
            });
        }
        new_body.extend(body.iter().cloned());
    }
    Ok(Stmt::While {
        cond: cond.clone(),
        body: new_body,
    })
}

/// Result of the frequent-path transformation.
#[derive(Debug, Clone)]
pub struct FrequentPathOutput {
    /// statements replacing the loop
    pub stmts: Vec<Stmt>,
    /// name of the predicate temporary holding `A` one iteration ahead
    pub pred: String,
}

/// Apply frequent-path modulo scheduling to
/// `for (v = init; v < bound; v += s) { if (A) { B } else { C } D }` where
/// `A` is side-effect free. The kernel executes `B_i; D_i ‖ A_{i+1}` as
/// long as the lookahead predicate holds; when it fails, the pipeline
/// drains (`C`/`D` of the failing iteration) and the kernel restarts after
/// it — the slow path costs extra control only on infrequent iterations.
///
/// Requirements: constant bounds and step (the restart logic materializes
/// concrete loop headers), and the body must be exactly the
/// if-then-else + trailing statements shape.
pub fn frequent_path_ms(prog: &mut Program, stmt: &Stmt) -> Result<FrequentPathOutput, SlmsError> {
    let Stmt::For(f) = stmt else {
        return Err(SlmsError::NotAForLoop);
    };
    let trip = f.trip_count().ok_or(SlmsError::SymbolicBounds)?;
    if trip < 2 {
        return Err(SlmsError::TooFewIterations { trip, needed: 2 });
    }
    let init = f.init.const_int().ok_or(SlmsError::SymbolicBounds)?;
    let s = f.step;
    // shape: [If{A, B, C}, D...]
    let (a, b, c, d) = match f.body.as_slice() {
        [Stmt::If {
            cond,
            then_branch,
            else_branch,
        }, rest @ ..] => (
            cond.clone(),
            then_branch.clone(),
            else_branch.clone(),
            rest.to_vec(),
        ),
        _ => {
            return Err(SlmsError::Analysis(
                slc_analysis::AnalysisError::UnsupportedLoopForm(
                    "frequent-path MS needs `if (A) B else C; D…` shape".into(),
                ),
            ))
        }
    };
    let pred = prog.fresh_name("pf");
    prog.ensure_scalar(&pred, Ty::Int);
    let pv = || Expr::Var(pred.clone());
    let last = init + (trip - 1) * s;

    // pf = A(init);
    let mut a0 = Stmt::assign(LValue::Var(pred.clone()), a.clone());
    substitute_scalar(&mut a0, &f.var, &Expr::Int(init));
    map_exprs(&mut a0, &mut simplify);

    // Pipelined fast loop:
    //   for (v = init; v < last; v += s) {
    //     if (!pf) { C_v; D_v; pf = A(v+s); }          // drain + refill
    //     else     { B_v; par { D_v; pf = A(v+s); } }  // kernel row
    //   }
    let mut a_next = Stmt::assign(LValue::Var(pred.clone()), a.clone());
    shift_induction(&mut a_next, &f.var, s);
    let mut slow = Vec::new();
    slow.extend(c.iter().cloned());
    slow.extend(d.iter().cloned());
    slow.push(a_next.clone());
    let mut fast = Vec::new();
    fast.extend(b.iter().cloned());
    let mut row = d.clone();
    row.push(a_next);
    fast.push(Stmt::Par(row));
    let body = vec![Stmt::If {
        cond: pv(),
        then_branch: fast,
        else_branch: slow,
    }];
    let kernel_loop = Stmt::For(ForLoop {
        var: f.var.clone(),
        init: Expr::Int(init),
        cmp: if s > 0 { CmpOp::Lt } else { CmpOp::Gt },
        bound: Expr::Int(last),
        step: s,
        body,
    });

    // Final iteration (pf computed for it already):
    let mut tail = Vec::new();
    let mut fin_then = b.clone();
    let mut fin_else = c.clone();
    for st in fin_then.iter_mut().chain(fin_else.iter_mut()) {
        substitute_scalar(st, &f.var, &Expr::Int(last));
        map_exprs(st, &mut simplify);
    }
    tail.push(Stmt::If {
        cond: pv(),
        then_branch: fin_then,
        else_branch: fin_else,
    });
    for st in &d {
        let mut stc = st.clone();
        substitute_scalar(&mut stc, &f.var, &Expr::Int(last));
        map_exprs(&mut stc, &mut simplify);
        tail.push(stc);
    }

    let mut stmts = vec![a0, kernel_loop];
    stmts.extend(tail);
    // restore the induction variable's exit value
    stmts.push(Stmt::assign(
        LValue::Var(f.var.clone()),
        Expr::Int(init + trip * s),
    ));
    Ok(FrequentPathOutput { stmts, pred })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::parse_program;
    use slc_ast::pretty::stmts_to_source;

    #[test]
    fn unroll_while_structure() {
        let p = parse_program(
            "float a[32]; int i; while (a[i + 2] > 0.0) { a[i] = a[i + 2]; i += 1; }",
        )
        .unwrap();
        let out = unroll_while(&p.stmts[0], 2).unwrap();
        let src = stmts_to_source(&[out]);
        assert_eq!(src.matches("a[i] = a[i + 2];").count(), 2, "{src}");
        assert!(src.contains("break;"), "{src}");
    }

    #[test]
    fn unroll_while_rejects_for() {
        let p = parse_program("int i; for (i = 0; i < 3; i++) i = i;").unwrap();
        assert!(unroll_while(&p.stmts[0], 2).is_err());
    }

    #[test]
    fn frequent_path_shape() {
        let mut p = parse_program(
            "float x[64]; float acc; int i;\n\
             for (i = 0; i < 40; i++) { if (x[i] > 0.0) { acc = acc + x[i]; } else { acc = acc - 1.0; } x[i] = acc; }",
        )
        .unwrap();
        let loop_stmt = p.stmts[0].clone();
        let out = frequent_path_ms(&mut p, &loop_stmt).unwrap();
        let src = stmts_to_source(&out.stmts);
        assert!(src.contains("pf1 ="), "{src}");
        assert!(src.contains("par {"), "{src}");
        assert!(src.trim_end().ends_with("i = 40;"), "{src}");
    }

    #[test]
    fn frequent_path_rejects_wrong_shape() {
        let mut p =
            parse_program("float a[8]; int i; for (i = 0; i < 8; i++) a[i] = 1.0;").unwrap();
        let loop_stmt = p.stmts[0].clone();
        assert!(frequent_path_ms(&mut p, &loop_stmt).is_err());
    }
}
