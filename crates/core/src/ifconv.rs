//! Source-level if-conversion (§3.1).
//!
//! `if (x < y) { x = x + 1; A[i] += x; } else { y = y + 1; }` becomes
//!
//! ```text
//! c = x < y;
//! if (c) x = x + 1;
//! if (c) A[i] += x;
//! if (!c) y = y + 1;
//! ```
//!
//! Each predicated statement is an *elementary* if — a single-assignment MI
//! the rest of the pipeline treats like an ordinary MI with an extra scalar
//! read of its predicate. Nested ifs are flattened by conjoining predicates
//! (`c2 = c1 && inner`), which is safe because conditions in this language
//! are side-effect free.

use slc_ast::{BinOp, Expr, LValue, Program, Stmt, Ty, UnOp};

/// Result of if-conversion over a loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct IfConverted {
    /// The flattened body (assignments + elementary predicated ifs).
    pub body: Vec<Stmt>,
    /// Names of the predicate temporaries introduced (already declared in
    /// the program passed to [`if_convert`]).
    pub preds: Vec<String>,
}

/// True when the statement list contains a *compound* if that needs
/// conversion (anything but single-assignment elementary ifs).
pub fn needs_if_conversion(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            !else_branch.is_empty()
                || then_branch.len() != 1
                || !matches!(then_branch[0], Stmt::Assign { .. })
                || !matches!(cond, Expr::Var(_) | Expr::Unary(UnOp::Not, _))
        }
        Stmt::Block(b) => needs_if_conversion(b),
        _ => false,
    })
}

/// Apply source-level if-conversion to a loop body, registering fresh
/// predicate scalars in `prog`.
pub fn if_convert(prog: &mut Program, body: &[Stmt]) -> IfConverted {
    let mut out = Vec::new();
    let mut preds = Vec::new();
    convert(prog, body, None, &mut out, &mut preds);
    IfConverted { body: out, preds }
}

fn guard(stmt: Stmt, pred: Option<&Expr>) -> Stmt {
    match pred {
        None => stmt,
        Some(p) => Stmt::If {
            cond: p.clone(),
            then_branch: vec![stmt],
            else_branch: vec![],
        },
    }
}

fn convert(
    prog: &mut Program,
    body: &[Stmt],
    pred: Option<&Expr>,
    out: &mut Vec<Stmt>,
    preds: &mut Vec<String>,
) {
    for s in body {
        match s {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                // Fresh predicate: c = (outer &&) cond.
                let name = prog.fresh_name("pred");
                prog.ensure_scalar(&name, Ty::Int);
                preds.push(name.clone());
                let full = match pred {
                    None => cond.clone(),
                    Some(p) => Expr::bin(BinOp::And, p.clone(), cond.clone()),
                };
                out.push(Stmt::assign(LValue::Var(name.clone()), full));
                let pv = Expr::Var(name.clone());
                convert(prog, then_branch, Some(&pv), out, preds);
                if !else_branch.is_empty() {
                    let np = match pred {
                        None => Expr::Unary(UnOp::Not, Box::new(pv.clone())),
                        Some(p) => Expr::bin(
                            BinOp::And,
                            p.clone(),
                            Expr::Unary(UnOp::Not, Box::new(pv.clone())),
                        ),
                    };
                    // Materialize the negated predicate so each MI reads a
                    // plain scalar (keeps MIs elementary).
                    let nname = prog.fresh_name("pred");
                    prog.ensure_scalar(&nname, Ty::Int);
                    preds.push(nname.clone());
                    out.push(Stmt::assign(LValue::Var(nname.clone()), np));
                    let npv = Expr::Var(nname);
                    convert(prog, else_branch, Some(&npv), out, preds);
                }
            }
            Stmt::Block(b) => convert(prog, b, pred, out, preds),
            other => out.push(guard(other.clone(), pred)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::pretty::stmts_to_source;
    use slc_ast::{parse_program, parse_stmts};

    #[test]
    fn paper_example() {
        let mut prog = parse_program("int x, y, i; float A[10];").unwrap();
        let body = parse_stmts("if (x < y) { x = x + 1; A[i] += x; } else { y = y + 1; }").unwrap();
        let conv = if_convert(&mut prog, &body);
        let src = stmts_to_source(&conv.body);
        assert!(src.contains("pred1 = x < y;"), "got:\n{src}");
        assert!(src.contains("if (pred1) {"), "got:\n{src}");
        assert!(src.contains("pred2 = !pred1;"), "got:\n{src}");
        assert!(src.contains("if (pred2) {"), "got:\n{src}");
        assert_eq!(conv.preds, vec!["pred1", "pred2"]);
        // 2 pred defs + 3 guarded assignments
        assert_eq!(conv.body.len(), 5);
    }

    #[test]
    fn nested_if_conjoins() {
        let mut prog = parse_program("int a, b, x;").unwrap();
        let body = parse_stmts("if (a) { if (b) x = 1; }").unwrap();
        let conv = if_convert(&mut prog, &body);
        let src = stmts_to_source(&conv.body);
        assert!(src.contains("pred2 = pred1 && b;"), "got:\n{src}");
        assert!(src.contains("if (pred2) {"), "got:\n{src}");
    }

    #[test]
    fn needs_conversion_detection() {
        let simple = parse_stmts("if (c) x = 1;").unwrap();
        assert!(!needs_if_conversion(&simple));
        let compound = parse_stmts("if (x < y) x = 1;").unwrap();
        assert!(needs_if_conversion(&compound)); // non-scalar condition
        let with_else = parse_stmts("if (c) x = 1; else y = 1;").unwrap();
        assert!(needs_if_conversion(&with_else));
        let plain = parse_stmts("x = 1; y = 2;").unwrap();
        assert!(!needs_if_conversion(&plain));
    }

    #[test]
    fn non_if_statements_pass_through() {
        let mut prog = parse_program("int x;").unwrap();
        let body = parse_stmts("x = 1; x = 2;").unwrap();
        let conv = if_convert(&mut prog, &body);
        assert_eq!(conv.body, body);
        assert!(conv.preds.is_empty());
    }
}
