//! Decomposition of multi-instructions (§3.2).
//!
//! Two operations, both of which split one MI into two by introducing a
//! temporary:
//!
//! * [`break_self_dep`] — select a load array reference with **no flow
//!   dependence from the MI's store** (i.e. an anti-direction or unrelated
//!   read, like `A[i + 2]` against the store `A[i] = …`) and hoist it into
//!   its own MI `regN = A[i + 2];`. This both provides a second MI (a loop
//!   with a single MI can never be pipelined) and breaks the loop-carried
//!   self dependence that otherwise pins the MII.
//! * [`split_wide`] — cut an over-wide expression in half
//!   (`x = A[i]+B[i]+C[i]+D[i]` → `t1 = A[i]+B[i]; x = t1+C[i]+D[i]`),
//!   reducing per-MI resource usage. The cut happens on the left spine of
//!   the expression tree, so no re-association occurs and floating-point
//!   semantics are bit-preserved.
//!
//! Hoisting a load to just before its MI never changes sequential semantics
//! (nothing executes in between), so both operations are safe independent of
//! any dependence test; the eligibility test only decides *profitability*.

use slc_analysis::deps::DepDist;
use slc_analysis::{accesses_of_stmt, array_dep_distances, ArrayAccess};
use slc_ast::visit::rewrite_expr;
use slc_ast::{BinOp, Expr, LValue, Program, Stmt, Ty};

/// Count syntactic leaves of a same-operator chain along the left spine.
fn left_spine_leaves(e: &Expr, op: BinOp) -> usize {
    match e {
        Expr::Binary(o, a, _) if *o == op => 1 + left_spine_leaves(a, op),
        _ => 1,
    }
}

fn array_elem_ty(prog: &Program, name: &str) -> Ty {
    prog.decl(name).map(|d| d.ty).map_or(Ty::Float, |t| t)
}

/// All array-read subexpressions of an MI's right-hand side(s),
/// syntactically deduplicated.
fn candidate_loads(stmt: &Stmt) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::new();
    let mut push = |e: &Expr| {
        if let Expr::Index(..) = e {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
    };
    match stmt {
        Stmt::Assign { value, op, target } => {
            // Reads of the target through a compound op are not hoistable
            // (they are the store cell itself); only scan `value`.
            let _ = (op, target);
            slc_ast::visit::walk_expr(value, &mut push);
        }
        Stmt::If {
            cond, then_branch, ..
        } => {
            slc_ast::visit::walk_expr(cond, &mut push);
            for s in then_branch {
                if let Stmt::Assign { value, .. } = s {
                    slc_ast::visit::walk_expr(value, &mut push);
                }
            }
        }
        _ => {}
    }
    out
}

/// True when hoisting `load` out of the MI with writes `writes` removes a
/// self flow dependence: no write reaches the load at distance ≥ 0.
fn eligible(load: &ArrayAccess, writes: &[ArrayAccess], var: &str, step: i64) -> bool {
    for w in writes {
        match array_dep_distances(w, load, var) {
            DepDist::None => {}
            DepDist::Dist(dv) => {
                // value-space → iteration-space. A distance-0 pair is the
                // same iteration's own store, which executes *after* the
                // rhs load — not a flow into the load; only a strictly
                // positive distance means the store feeds this load.
                if dv % step == 0 && dv / step > 0 {
                    return false;
                }
            }
            DepDist::Any => return false,
        }
    }
    true
}

/// Try to decompose `body[k]` by hoisting one eligible load into a fresh
/// temporary MI inserted at position `k`. Returns the temp name on success.
///
/// The *rightmost* eligible load is selected (matching the paper's choice of
/// `A[i + 2]` in the §3.2 worked example) and **all** syntactically equal
/// occurrences are replaced (matching the FP example in §9.2 where every
/// `X[k+1]` becomes `reg2`).
pub fn break_self_dep(
    prog: &mut Program,
    body: &mut Vec<Stmt>,
    k: usize,
    var: &str,
    step: i64,
) -> Option<String> {
    let stmt = &body[k];
    let acc = accesses_of_stmt(stmt);
    let writes: Vec<ArrayAccess> = acc.arrays.iter().filter(|a| a.write).cloned().collect();
    let loads = candidate_loads(stmt);
    // `candidate_loads` yields only `Expr::Index` nodes; destructure once so
    // malformed candidates are skipped instead of panicking.
    let (arr_name, chosen) = loads
        .iter()
        .rev()
        .filter_map(|l| match l {
            Expr::Index(name, indices) => Some((name, indices, l)),
            _ => None,
        })
        .find(|(name, indices, _)| {
            let la = ArrayAccess {
                array: (*name).clone(),
                indices: (*indices).clone(),
                write: false,
            };
            eligible(&la, &writes, var, step)
        })
        .map(|(name, _, l)| (name.clone(), l.clone()))?;
    let temp = prog.fresh_name("reg");
    prog.ensure_scalar(&temp, array_elem_ty(prog, &arr_name));
    // Replace all equal occurrences in the MI.
    let repl = Expr::Var(temp.clone());
    slc_ast::visit::map_exprs(&mut body[k], &mut |e| {
        rewrite_expr(e, &mut |node| {
            if *node == chosen {
                *node = repl.clone();
            }
        });
    });
    body.insert(k, Stmt::assign(LValue::Var(temp.clone()), chosen));
    Some(temp)
}

/// Split an over-wide assignment: when the RHS left spine chains more than
/// `max_leaves` operands of one `+`/`*` operator, hoist the spine prefix
/// holding half the leaves into a temp. Returns the temp name on success.
pub fn split_wide(
    prog: &mut Program,
    body: &mut Vec<Stmt>,
    k: usize,
    max_leaves: usize,
) -> Option<String> {
    let Stmt::Assign { value, .. } = &body[k] else {
        return None;
    };
    let Expr::Binary(op, _, _) = value else {
        return None;
    };
    let op = *op;
    if !matches!(op, BinOp::Add | BinOp::Mul) {
        return None;
    }
    let leaves = left_spine_leaves(value, op);
    if leaves <= max_leaves || leaves < 3 {
        return None;
    }
    let keep = leaves.div_ceil(2); // leaves in the hoisted prefix
                                   // Walk down the left spine (leaves - keep) times to find the cut node.
    let temp = prog.fresh_name("t");
    prog.ensure_scalar(&temp, Ty::Float);
    let Stmt::Assign { value, .. } = &mut body[k] else {
        return None; // shape re-checked after the mutable reborrow
    };
    fn descend(e: &mut Expr, op: BinOp, depth: usize) -> &mut Expr {
        if depth == 0 {
            return e;
        }
        if matches!(e, Expr::Binary(o, _, _) if *o == op) {
            let Expr::Binary(_, a, _) = e else { return e };
            descend(a, op, depth - 1)
        } else {
            e
        }
    }
    let node = descend(value, op, leaves - keep);
    let prefix = std::mem::replace(node, Expr::Var(temp.clone()));
    body.insert(k, Stmt::assign(LValue::Var(temp.clone()), prefix));
    Some(temp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::pretty::stmts_to_source;
    use slc_ast::{parse_program, parse_stmts};

    #[test]
    fn paper_recurrence_decomposition() {
        let mut prog = parse_program("float A[100]; int i;").unwrap();
        let mut body = parse_stmts("A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];").unwrap();
        let t = break_self_dep(&mut prog, &mut body, 0, "i", 1).unwrap();
        assert_eq!(t, "reg1");
        let src = stmts_to_source(&body);
        assert!(src.contains("reg1 = A[i + 2];"), "got:\n{src}");
        assert!(
            src.contains("A[i] = A[i - 1] + A[i - 2] + A[i + 1] + reg1;"),
            "got:\n{src}"
        );
    }

    #[test]
    fn chooses_rightmost_eligible() {
        let mut prog = parse_program("float A[100]; int i;").unwrap();
        // Both A[i+1] and A[i+2] eligible; rightmost is A[i+2].
        let mut body = parse_stmts("A[i] = A[i + 1] + A[i + 2];").unwrap();
        break_self_dep(&mut prog, &mut body, 0, "i", 1).unwrap();
        let src = stmts_to_source(&body);
        assert!(src.contains("reg1 = A[i + 2];"), "got:\n{src}");
    }

    #[test]
    fn flow_fed_load_ineligible() {
        let mut prog = parse_program("float A[100]; int i;").unwrap();
        // Only load is A[i-1], which the store feeds (distance 1): no
        // eligible load, decomposition must fail.
        let mut body = parse_stmts("A[i] = A[i - 1] * 2.0;").unwrap();
        assert!(break_self_dep(&mut prog, &mut body, 0, "i", 1).is_none());
    }

    #[test]
    fn unrelated_array_is_eligible() {
        let mut prog = parse_program("float A[100]; float B[100]; int i;").unwrap();
        let mut body = parse_stmts("A[i] = A[i - 1] + B[i];").unwrap();
        break_self_dep(&mut prog, &mut body, 0, "i", 1).unwrap();
        let src = stmts_to_source(&body);
        assert!(src.contains("reg1 = B[i];"), "got:\n{src}");
    }

    #[test]
    fn replaces_all_equal_occurrences() {
        let mut prog = parse_program("float X[100]; int k;").unwrap();
        let mut body =
            parse_stmts("X[k] = X[k - 1] * X[k - 1] + X[k + 1] * X[k + 1] * X[k + 1];").unwrap();
        break_self_dep(&mut prog, &mut body, 0, "k", 1).unwrap();
        let src = stmts_to_source(&body);
        assert!(src.contains("reg1 = X[k + 1];"), "got:\n{src}");
        assert!(src.contains("reg1 * reg1 * reg1"), "got:\n{src}");
        assert!(!src.contains("X[k + 1] *"), "got:\n{src}");
    }

    #[test]
    fn split_wide_halves() {
        let mut prog =
            parse_program("float A[9]; float B[9]; float C[9]; float D[9]; float x; int i;")
                .unwrap();
        let mut body = parse_stmts("x = A[i] + B[i] + C[i] + D[i];").unwrap();
        let t = split_wide(&mut prog, &mut body, 0, 2).unwrap();
        assert_eq!(t, "t1");
        let src = stmts_to_source(&body);
        assert!(src.contains("t1 = A[i] + B[i];"), "got:\n{src}");
        assert!(src.contains("x = t1 + C[i] + D[i];"), "got:\n{src}");
    }

    #[test]
    fn split_wide_respects_threshold() {
        let mut prog = parse_program("float A[9]; float B[9]; float x; int i;").unwrap();
        let mut body = parse_stmts("x = A[i] + B[i];").unwrap();
        assert!(split_wide(&mut prog, &mut body, 0, 2).is_none());
    }

    #[test]
    fn predicated_mi_decomposable() {
        let mut prog = parse_program("float A[100]; int i; int c;").unwrap();
        let mut body = parse_stmts("if (c) A[i] = A[i + 1];").unwrap();
        break_self_dep(&mut prog, &mut body, 0, "i", 1).unwrap();
        let src = stmts_to_source(&body);
        assert!(src.contains("reg1 = A[i + 1];"), "got:\n{src}");
    }
}
