//! Source-level delay calculation (§3.5 of the paper).
//!
//! At machine level the delay of a dependence edge is the pipeline-stall
//! count; at source level "pipeline stalls have no meaning", so the paper
//! defines delays purely positionally, such that the sum of delays along
//! every dependence cycle is at least the number of edges in the cycle:
//!
//! 1. `delay(MI_i, MI_i) = 1` (loop-carried self dependence);
//! 2. `delay(MI_i, MI_{i+1}) = 1`;
//! 3. `delay(MI_i, MI_j) = k` for a forward edge, where `k` is the maximal
//!    delay along any path from `MI_i` to `MI_j`;
//! 4. `delay(MI_i, MI_j) = 1` for a back edge.
//!
//! Because consecutive MIs are implicitly chained with delay 1 (rule 2), the
//! maximal-path value of rule 3 evaluates to `j - i` for a forward edge —
//! the implicit chain `i → i+1 → … → j` always exists and dominates any
//! data-dependence path (each data edge from `a` to `b > a` contributes at
//! most `b - a`, by induction). [`forward_delay`] computes the closed form;
//! [`delay_of_edge`] dispatches on edge shape.

use slc_analysis::DepEdge;

/// Delay of a forward dependence edge from MI `i` to MI `j > i`: the longest
/// path through the implicit delay-1 chain, i.e. `j - i`.
pub fn forward_delay(i: usize, j: usize) -> i64 {
    debug_assert!(j > i);
    (j - i) as i64
}

/// The §3.5 delay of a dependence edge.
pub fn delay_of_edge(e: &DepEdge) -> i64 {
    if e.from == e.to {
        1 // rule 1: self dependence
    } else if e.to > e.from {
        forward_delay(e.from, e.to) // rules 2–3
    } else {
        1 // rule 4: back edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_analysis::{DepKind, Distance};

    fn edge(from: usize, to: usize) -> DepEdge {
        DepEdge {
            from,
            to,
            kind: DepKind::Flow,
            dists: vec![Distance::Const(1)],
            scalar: None,
        }
    }

    #[test]
    fn rules() {
        assert_eq!(delay_of_edge(&edge(2, 2)), 1); // self
        assert_eq!(delay_of_edge(&edge(2, 3)), 1); // consecutive
        assert_eq!(delay_of_edge(&edge(3, 5)), 2); // forward span 2 (fig 8 d→f)
        assert_eq!(delay_of_edge(&edge(5, 2)), 1); // back edge (fig 8 f→c)
    }

    #[test]
    fn figure8_cycle_sums() {
        // C1 = c→d→e→f→c: delays 1+1+1+1 = 4; C2 = c→d→f→c: 1+2+1 = 4.
        let c1: i64 = [edge(2, 3), edge(3, 4), edge(4, 5), edge(5, 2)]
            .iter()
            .map(delay_of_edge)
            .sum();
        assert_eq!(c1, 4);
        let c2: i64 = [edge(2, 3), edge(3, 5), edge(5, 2)]
            .iter()
            .map(delay_of_edge)
            .sum();
        assert_eq!(c2, 4);
    }
}
