//! Guarded emission for loops with **symbolic bounds**.
//!
//! The paper sidesteps unknown trip counts ("complete last iteration",
//! Fig. 7); a deployable source-level compiler cannot. This module emits a
//! runtime-guarded version for unit-stride loops:
//!
//! ```text
//! if (<enough iterations for the pipeline depth M>) {
//!     prologue (var expressed as init + j);
//!     pipelined kernel with the bound shrunk by M;
//!     epilogue (var-relative, exact because |step| = 1 pins the exit value);
//!     var = <original exit value>;
//! } else {
//!     the original loop, untouched;
//! }
//! ```
//!
//! Restrictions (checked, falling back to the untransformed loop):
//! * `|step| == 1` — only then is the kernel's exit value of the induction
//!   variable a closed-form expression of the bound;
//! * expansion **off** — MVE residues and scalar-expansion array sizes need
//!   the trip count, so every scalar dependence stays a placement
//!   constraint instead (still frequently II = 1: the same-row ordering
//!   covers the common def-use shapes).

#![allow(clippy::needless_range_loop)] // index loops mirror the papers' pseudo-code
use crate::SlmsError;
use slc_ast::visit::{add_const, map_exprs, shift_induction, simplify};
use slc_ast::{CmpOp, Expr, ForLoop, LValue, Stmt};

/// Emit the guarded symbolic-bound pipelined replacement of loop `f` whose
/// body has been partitioned into `mis`, at initiation interval `ii`.
pub fn emit_symbolic_guarded(
    f: &ForLoop,
    mis: &[Stmt],
    ii: i64,
) -> Result<crate::EmitOutput, SlmsError> {
    let n = mis.len();
    assert!(ii >= 1 && (ii as usize) < n, "emit requires 1 <= II < n");
    if f.step.abs() != 1 {
        return Err(SlmsError::SymbolicBounds);
    }
    let s = f.step;
    let off = |k: usize| ((n - 1 - k) as i64) / ii;
    let m = off(0);

    // Substitute `var → init + j·s` in an instance (symbolic prologue).
    let const_instance = |k: usize, j: i64| -> Stmt {
        let mut st = mis[k].clone();
        let repl = add_const(f.init.clone(), j * s);
        slc_ast::visit::substitute_scalar(&mut st, &f.var, &repl);
        map_exprs(&mut st, &mut simplify);
        st
    };

    let mut then_branch: Vec<Stmt> = Vec::new();
    // ---- prologue -----------------------------------------------------
    for j in 0..m {
        for k in 0..n {
            if j < off(k) {
                then_branch.push(const_instance(k, j));
            }
        }
    }
    // ---- kernel ---------------------------------------------------------
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); ii as usize];
    for k in 0..n {
        let r = (k as i64 + ii * off(k) - (n as i64 - ii)) as usize;
        rows[r].push(k);
    }
    for row in &mut rows {
        row.sort_unstable_by(|a, b| b.cmp(a));
    }
    let mut body: Vec<Stmt> = Vec::new();
    for row in &rows {
        let mut members = Vec::new();
        for &k in row {
            let mut st = mis[k].clone();
            shift_induction(&mut st, &f.var, off(k) * s);
            members.push(st);
        }
        if members.len() == 1 {
            body.push(members.pop().unwrap());
        } else {
            body.push(Stmt::Par(members));
        }
    }
    let mut kernel_bound = add_const(f.bound.clone(), -m * s);
    simplify(&mut kernel_bound);
    then_branch.push(Stmt::For(ForLoop {
        var: f.var.clone(),
        init: f.init.clone(),
        cmp: f.cmp,
        bound: kernel_bound,
        step: s,
        body,
    }));
    // ---- epilogue ------------------------------------------------------
    // With |step| = 1 the kernel exits with `var` exactly at its shrunk
    // bound (Lt/Gt) or one past it (Le/Ge); epilogue instances are
    // var-relative, ordered by (iteration, MI position).
    for t in 0..m {
        for k in 0..n {
            // instance (k, j = K + t) exists iff off(k) <= t
            if off(k) <= t {
                let mut st = mis[k].clone();
                shift_induction(&mut st, &f.var, t * s);
                then_branch.push(st);
            }
        }
    }
    // ---- induction variable exit value ----------------------------------
    let exit_val = match f.cmp {
        CmpOp::Lt | CmpOp::Gt => f.bound.clone(),
        CmpOp::Le | CmpOp::Ge => add_const(f.bound.clone(), s),
        _ => return Err(SlmsError::SymbolicBounds),
    };
    then_branch.push(Stmt::assign(LValue::Var(f.var.clone()), exit_val));

    // ---- guard: trip count must exceed the pipeline depth ---------------
    // trips ≥ M + 1  ⇔  init + M·s still satisfies the loop condition.
    let mut guard = Expr::bin(
        slc_ast::BinOp::Cmp(f.cmp),
        add_const(f.init.clone(), m * s),
        f.bound.clone(),
    );
    simplify(&mut guard);
    let guarded = Stmt::If {
        cond: guard,
        then_branch,
        else_branch: vec![Stmt::For(f.clone())],
    };
    Ok(crate::EmitOutput {
        stmts: vec![guarded],
        unroll: 1,
        renamed: vec![],
        expanded_arrays: vec![],
        max_offset: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::pretty::stmts_to_source;
    use slc_ast::{parse_program, parse_stmts};

    fn mk_loop(src: &str, init: &str, cmp: CmpOp, bound: &str, step: i64) -> ForLoop {
        ForLoop {
            var: "i".into(),
            init: slc_ast::parse_expr(init).unwrap(),
            cmp,
            bound: slc_ast::parse_expr(bound).unwrap(),
            step,
            body: parse_stmts(src).unwrap(),
        }
    }

    #[test]
    fn guard_and_bound_shapes() {
        let _p = parse_program("float A[9]; float B[9]; int i; int n;").unwrap();
        let f = mk_loop("A[i] = 0.0; B[i] = 1.0;", "0", CmpOp::Lt, "n", 1);
        let out = emit_symbolic_guarded(&f, &f.body.clone(), 1).unwrap();
        let src = stmts_to_source(&out.stmts);
        assert!(src.contains("if (1 < n)"), "got:\n{src}");
        assert!(src.contains("for (i = 0; i < n - 1; i++)"), "got:\n{src}");
        assert!(src.contains("i = n;"), "got:\n{src}");
        // else branch keeps the original loop
        assert!(src.contains("for (i = 0; i < n; i++)"), "got:\n{src}");
    }

    #[test]
    fn downward_symbolic() {
        let f = mk_loop("A[i] = 0.0; B[i] = 1.0;", "n", CmpOp::Gt, "0", -1);
        let out = emit_symbolic_guarded(&f, &f.body.clone(), 1).unwrap();
        let src = stmts_to_source(&out.stmts);
        assert!(src.contains("if (n - 1 > 0)"), "got:\n{src}");
        assert!(src.contains("i > 1"), "got:\n{src}");
    }

    #[test]
    fn strided_rejected() {
        let f = mk_loop("A[i] = 0.0; B[i] = 1.0;", "0", CmpOp::Lt, "n", 2);
        assert!(matches!(
            emit_symbolic_guarded(&f, &f.body.clone(), 1),
            Err(SlmsError::SymbolicBounds)
        ));
    }
}
