//! # slc-core — Source Level Modulo Scheduling (SLMS)
//!
//! The paper's primary contribution: modulo scheduling applied as a
//! source-to-source loop transformation on the AST (Ben-Asher & Meisler,
//! ICPP 2006). The algorithm (§5):
//!
//! 1. filter bad cases by memory-ref ratio ([`filter`]);
//! 2. source-level if-conversion ([`ifconv`]);
//! 3. partition the body into multi-instructions (`slc-analysis`);
//! 4. compute dependence delays ([`delay`]) and the MII ([`mii`]);
//! 5. if no valid II exists, decompose MIs ([`decompose`]) and retry;
//! 6. emit prologue/kernel/epilogue with index shifting and eliminate
//!    decomposition-/scalar-induced dependences with modulo variable
//!    expansion or scalar expansion ([`mod@emit`]).
//!
//! Entry points: [`slms_loop`] transforms one `for` statement; [`slms_program`]
//! walks a whole program transforming every eligible innermost loop.
//!
//! Every successful transformation is *observationally identity*: the
//! emitted statements leave all originally-declared variables (including the
//! induction variable) with exactly the values the original loop produced.
//! The workspace's interpreter-based equivalence tests rely on this.

pub mod decompose;
pub mod delay;
pub mod diag;
pub mod emit;
pub mod emit_symbolic;
pub mod extensions;
pub mod filter;
pub mod ifconv;
pub mod mii;

pub use diag::{
    loop_outcome_json, render_loop_trace, slms_error_json, DiagEvent, DiagSink, PassArtifact,
    PassDiag,
};
pub use emit::{emit, EmitOutput, ExpandVar, Expansion};
pub use emit_symbolic::emit_symbolic_guarded;
pub use extensions::{frequent_path_ms, unroll_while, FrequentPathOutput};
pub use filter::{filter_loop, FilterConfig, FilterVerdict};
pub use ifconv::{if_convert, needs_if_conversion};
pub use mii::{constraints_of, cycles_mii, placement_mii, Constraint};

use slc_analysis::{
    build_ddg, build_ddg_ranged, partition_mis, AnalysisError, Ddg, DepKind, DepPairSummary,
    DepStats, Distance, LoopRange,
};
use slc_ast::{AssignOp, LValue, LoopId, Program, Stmt};
use slc_trace::Tracer;
use std::collections::HashSet;

/// Which scheduler picks the MI ordering of the emitted body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The paper's fixed placement over the body's source order (after
    /// decomposition): MI `k` of iteration `j` lands at row `II·j + k`.
    #[default]
    Heuristic,
    /// SAT-based exact search over all MI orderings of the final
    /// (decomposed) body: finds the least II any ordering achieves and
    /// attaches a re-checkable [`slc_exact::OptimalityCertificate`].
    Exact,
}

/// Configuration of the SLMS driver.
#[derive(Debug, Clone, PartialEq)]
pub struct SlmsConfig {
    /// Bad-case filter thresholds (§4).
    pub filter: FilterConfig,
    /// Whether to apply the bad-case filter at all (the figure-16/17 style
    /// ablations disable it to measure unfiltered behaviour).
    pub apply_filter: bool,
    /// How scalar/decomposition dependences are expanded away (§3.3–3.4).
    pub expansion: Expansion,
    /// Apply source-level if-conversion to compound conditionals (§3.1).
    pub if_conversion: bool,
    /// Maximum number of decomposition rounds before giving up (§5 step 5).
    pub max_decompositions: usize,
    /// Transform unit-stride loops with *symbolic* bounds by emitting a
    /// runtime-guarded version (pipeline only when the trip count exceeds
    /// the depth). Expansion is forced off for such loops.
    pub allow_symbolic_guard: bool,
    /// Which scheduler orders the MIs of the final body.
    pub scheduler: SchedulerKind,
}

impl Default for SlmsConfig {
    fn default() -> Self {
        SlmsConfig {
            filter: FilterConfig::default(),
            apply_filter: true,
            expansion: Expansion::Mve,
            if_conversion: true,
            max_decompositions: 8,
            allow_symbolic_guard: true,
            scheduler: SchedulerKind::Heuristic,
        }
    }
}

impl SlmsConfig {
    /// Stable content fingerprint of the configuration, part of the cache
    /// key for memoized SLMS artifacts in the batch experiment engine.
    /// Every field that can change the transformation output is fed to the
    /// hash explicitly; adding a field to the struct without extending this
    /// method is caught by the exhaustive destructuring below.
    pub fn fingerprint(&self) -> u64 {
        let SlmsConfig {
            filter,
            apply_filter,
            expansion,
            if_conversion,
            max_decompositions,
            allow_symbolic_guard,
            scheduler,
        } = self;
        let mut h = slc_analysis::Fnv64::new();
        h.write_f64(filter.max_memref_ratio);
        match filter.min_arith_per_ref {
            None => h.write_bool(false),
            Some(r) => h.write_bool(true).write_f64(r),
        };
        h.write_bool(*apply_filter);
        h.write_u64(match expansion {
            Expansion::Off => 0,
            Expansion::Mve => 1,
            Expansion::ScalarExpand => 2,
        });
        h.write_bool(*if_conversion);
        h.write_usize(*max_decompositions);
        h.write_bool(*allow_symbolic_guard);
        h.write_u64(match scheduler {
            SchedulerKind::Heuristic => 0,
            SchedulerKind::Exact => 1,
        });
        h.finish()
    }
}

/// Cache key for the SLMS artifact of a program under a configuration:
/// the memoization boundary the batch engine uses for the expensive
/// DDG-construction / MII / difMin iteration work inside [`slms_program`].
pub fn slms_cache_key(program_fingerprint: u64, cfg: &SlmsConfig) -> u64 {
    slc_analysis::fingerprint::combine(&[program_fingerprint, cfg.fingerprint()])
}

/// Why SLMS declined or failed to transform a loop.
#[derive(Debug, Clone, PartialEq)]
pub enum SlmsError {
    /// The statement is not a `for` loop.
    NotAForLoop,
    /// Rejected by the §4 bad-case filter.
    Filtered(FilterVerdict),
    /// Loop-shape/eligibility failure from the analysis layer.
    Analysis(AnalysisError),
    /// The induction variable is written inside the body.
    VarWrittenInBody,
    /// No valid `II < n` exists even after decomposition.
    NoValidIi,
    /// Emission requires constant loop bounds.
    SymbolicBounds,
    /// The loop has fewer iterations than the pipeline depth.
    TooFewIterations {
        /// constant trip count of the loop
        trip: i64,
        /// minimum trip count required (`max_offset + 1`)
        needed: i64,
    },
    /// MVE would need to unroll the kernel more than the sanity cap.
    UnrollTooLarge(i64),
    /// Emission was asked to place `n_mis` MIs at an II outside `1..n_mis`
    /// (the fixed placement is undefined there — a driver bug, not a
    /// property of the input loop).
    InvalidIi {
        /// requested initiation interval
        ii: i64,
        /// number of multi-instructions in the body
        n_mis: usize,
    },
}

impl std::fmt::Display for SlmsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlmsError::NotAForLoop => write!(f, "not a for loop"),
            SlmsError::Filtered(v) => write!(f, "filtered as a bad case: {v}"),
            SlmsError::Analysis(e) => write!(f, "{e}"),
            SlmsError::VarWrittenInBody => write!(f, "induction variable written in body"),
            SlmsError::NoValidIi => write!(f, "no valid initiation interval"),
            SlmsError::SymbolicBounds => write!(f, "loop bounds are not constant"),
            SlmsError::TooFewIterations { trip, needed } => {
                write!(f, "trip count {trip} below pipeline depth {needed}")
            }
            SlmsError::UnrollTooLarge(u) => write!(f, "MVE unroll factor {u} too large"),
            SlmsError::InvalidIi { ii, n_mis } => {
                write!(f, "II = {ii} outside the valid range 1..{n_mis}")
            }
        }
    }
}

impl std::error::Error for SlmsError {}

impl From<AnalysisError> for SlmsError {
    fn from(e: AnalysisError) -> Self {
        SlmsError::Analysis(e)
    }
}

/// Statistics of one successful SLMS application.
#[derive(Debug, Clone, PartialEq)]
pub struct SlmsReport {
    /// Achieved initiation interval.
    pub ii: i64,
    /// The paper's cycle-based MII (Iterative Shortest Path), for
    /// comparison; `None` when that computation finds no feasible II < n.
    pub cycles_mii: Option<i64>,
    /// Number of multi-instructions scheduled.
    pub n_mis: usize,
    /// MVE kernel unroll factor (1 = none).
    pub unroll: i64,
    /// Temporaries introduced by decomposition.
    pub decomposed: Vec<String>,
    /// Variables renamed by MVE with their version names.
    pub renamed: Vec<(String, Vec<String>)>,
    /// Variables turned into arrays by scalar expansion.
    pub expanded_arrays: Vec<(String, String)>,
    /// Whether if-conversion ran.
    pub if_converted: bool,
    /// Pipeline depth in iterations (`max_k off_k`).
    pub max_offset: i64,
    /// II the fixed-placement heuristic achieved before the exact search.
    /// `Some` exactly when the exact scheduler ran on this loop; the
    /// optimality gap is `heuristic_ii − ii`.
    pub heuristic_ii: Option<i64>,
    /// Exact reordering as emitted-position → pre-reorder MI index
    /// (identity when the heuristic order was already optimal). `Some`
    /// exactly when the exact scheduler ran.
    pub exact_order: Option<Vec<usize>>,
    /// Re-checkable II-optimality certificate, in the emitted index
    /// space. `Some` exactly when the exact scheduler ran.
    pub certificate: Option<slc_exact::OptimalityCertificate>,
    /// Per-pair dependence verdicts (with certificates) of the exact
    /// engine's final analysis of the emitted body. Empty when the loop
    /// range was not a compile-time constant (legacy test used instead).
    pub dep_pairs: Vec<DepPairSummary>,
}

/// A successful transformation: replacement statements plus statistics.
#[derive(Debug, Clone)]
pub struct SlmsOutput {
    /// Statements that replace the original loop statement.
    pub stmts: Vec<Stmt>,
    /// Transformation statistics.
    pub report: SlmsReport,
}

/// Build the loop DDG with the exact, certificate-producing engine when the
/// loop range is a compile-time constant, falling back to the legacy test
/// otherwise. Returns the per-pair verdicts alongside (empty on fallback);
/// `stats` accumulates the `deps.*` counters across calls.
fn build_loop_ddg(
    mis: &[slc_analysis::Mi],
    var: &str,
    step: i64,
    range: Option<&LoopRange>,
    stats: &mut DepStats,
) -> (Ddg, Vec<DepPairSummary>) {
    match range {
        Some(r) => {
            let rd = build_ddg_ranged(mis, var, r, stats);
            (rd.ddg, rd.pairs)
        }
        None => (build_ddg(mis, var, step), Vec::new()),
    }
}

/// Find scalars that expansion may rename: single unconditional plain def,
/// no cross-iteration flow (every consumer reads the value produced in its
/// own iteration).
fn expandable_vars(
    mis: &[Stmt],
    ddg: &Ddg,
    var: &str,
    original: &HashSet<String>,
) -> Vec<ExpandVar> {
    let mut out = Vec::new();
    for (d, mi) in mis.iter().enumerate() {
        let Stmt::Assign {
            target: LValue::Var(name),
            op: AssignOp::Set,
            ..
        } = mi
        else {
            continue;
        };
        if name == var {
            continue;
        }
        // single def across the loop?
        let defs = (0..mis.len())
            .filter(|&k| ddg.accesses[k].scalar_writes(var).any(|s| s.name == *name))
            .count();
        if defs != 1 {
            continue;
        }
        // no cross-iteration flow on this scalar
        let crosses = ddg.edges.iter().any(|e| {
            e.scalar.as_deref() == Some(name.as_str())
                && e.kind == DepKind::Flow
                && e.dists.iter().any(|dd| *dd != Distance::Const(0))
        });
        if crosses {
            continue;
        }
        // uses: any scalar read (including subscript position)
        let max_use = (0..mis.len())
            .filter(|&k| {
                ddg.accesses[k]
                    .scalars
                    .iter()
                    .any(|s| !s.write && s.name == *name)
            })
            .max()
            .unwrap_or(d);
        if max_use < d {
            // a use before the def would be a cross-iteration flow; already
            // excluded above, but keep the guard for clarity
            continue;
        }
        out.push(ExpandVar {
            name: name.clone(),
            def_pos: d,
            max_use_pos: max_use.max(d),
            restore: original.contains(name),
        });
    }
    out
}

/// Apply SLMS to one `for` statement. On success the returned statements
/// replace the loop; `prog` gains declarations for any temporaries. On
/// failure `prog` is left unchanged.
///
/// ```
/// use slc_core::{slms_loop, SlmsConfig};
/// use slc_ast::parse_program;
///
/// let mut prog = parse_program(
///     "float A[32]; float B[32]; float s; float t; int i;\n\
///      for (i = 0; i < 32; i++) { t = A[i] * B[i]; s = s + t; }",
/// ).unwrap();
/// let loop_stmt = prog.stmts[0].clone();
/// let out = slms_loop(&mut prog, &loop_stmt, &SlmsConfig::default()).unwrap();
/// assert_eq!(out.report.ii, 1);          // pipelined at II = 1
/// assert_eq!(out.report.unroll, 2);      // MVE renamed t into 2 versions
/// ```
pub fn slms_loop(
    prog: &mut Program,
    loop_stmt: &Stmt,
    cfg: &SlmsConfig,
) -> Result<SlmsOutput, SlmsError> {
    slms_loop_traced(prog, loop_stmt, cfg, &mut Vec::new())
}

/// [`slms_loop`] with a decision trace: every filter verdict, MII round,
/// decomposition retry and the final schedule (or structured rejection) is
/// appended to `events`. The transformation result is identical to
/// [`slms_loop`] — tracing never changes what is emitted.
pub fn slms_loop_traced(
    prog: &mut Program,
    loop_stmt: &Stmt,
    cfg: &SlmsConfig,
    events: &mut Vec<DiagEvent>,
) -> Result<SlmsOutput, SlmsError> {
    slms_loop_spanned(prog, loop_stmt, cfg, events, &Tracer::disabled())
}

/// [`slms_loop_traced`] with wall-clock spans: the filter check, the MII /
/// decomposition iteration and emission each open a span on `tracer`
/// (category `"slms"`). Spans carry timings only — the decision trace in
/// `events` and the transformation result are byte-identical whether the
/// tracer is enabled or not.
pub fn slms_loop_spanned(
    prog: &mut Program,
    loop_stmt: &Stmt,
    cfg: &SlmsConfig,
    events: &mut Vec<DiagEvent>,
    tracer: &Tracer,
) -> Result<SlmsOutput, SlmsError> {
    let r = slms_loop_inner(prog, loop_stmt, cfg, events, tracer);
    if let Err(e) = &r {
        events.push(DiagEvent::Rejected { error: e.clone() });
    }
    r
}

fn slms_loop_inner(
    prog: &mut Program,
    loop_stmt: &Stmt,
    cfg: &SlmsConfig,
    events: &mut Vec<DiagEvent>,
    tracer: &Tracer,
) -> Result<SlmsOutput, SlmsError> {
    let Stmt::For(f) = loop_stmt else {
        return Err(SlmsError::NotAForLoop);
    };
    // Work on a scratch program so failed attempts leave no stray decls.
    let mut scratch = prog.clone();
    let original: HashSet<String> = prog.decls.iter().map(|d| d.name.clone()).collect();

    // Induction variable must not be written by the body.
    let body_writes: Vec<String> = f
        .body
        .iter()
        .flat_map(slc_ast::visit::scalars_written)
        .collect();
    if body_writes.contains(&f.var) {
        return Err(SlmsError::VarWrittenInBody);
    }

    if cfg.apply_filter {
        let mut span = tracer.span("slms", "slms.filter");
        let verdict = filter_loop(&f.body, &f.var, &cfg.filter);
        span.arg("passed", verdict.passed());
        events.push(DiagEvent::FilterChecked {
            verdict: verdict.clone(),
        });
        if !verdict.passed() {
            return Err(SlmsError::Filtered(verdict));
        }
    }

    // If-conversion (§3.1).
    let mut body = f.body.clone();
    let mut if_converted = false;
    if needs_if_conversion(&body) {
        if !cfg.if_conversion {
            return Err(SlmsError::Analysis(AnalysisError::UnsupportedLoopForm(
                "compound conditional without if-conversion".into(),
            )));
        }
        let conv = if_convert(&mut scratch, &body);
        body = conv.body;
        if_converted = true;
        events.push(DiagEvent::IfConverted);
    }

    // Symbolic bounds: only the guarded, expansion-free path can handle
    // them; bail out early when it is unavailable.
    let symbolic = f.trip_count().is_none();
    if symbolic && (!cfg.allow_symbolic_guard || f.step.abs() != 1) {
        return Err(SlmsError::SymbolicBounds);
    }
    if symbolic {
        events.push(DiagEvent::SymbolicGuard);
    }

    // Exact dependence engine: available whenever the loop range is fully
    // constant. `None` keeps the legacy per-pair test.
    let range = if symbolic {
        None
    } else {
        LoopRange::of_loop(f)
    };
    let mut dep_stats = DepStats::default();

    // Decomposition loop (§5 step 5).
    let mut mii_span = tracer.span("slms", "slms.mii");
    let mut decomposed: Vec<String> = Vec::new();
    let (ii, mis, expand, cons) = loop {
        let mis = partition_mis(&body)?;
        let (ddg, _) = build_loop_ddg(&mis, &f.var, f.step, range.as_ref(), &mut dep_stats);
        let expand = if cfg.expansion == Expansion::Off || symbolic {
            vec![]
        } else {
            expandable_vars(&body, &ddg, &f.var, &original)
        };
        let removable = |e: &slc_analysis::DepEdge| -> bool {
            matches!(e.kind, DepKind::Anti | DepKind::Output)
                && e.scalar
                    .as_deref()
                    .is_some_and(|s| expand.iter().any(|v| v.name == s))
        };
        let cons = constraints_of(&ddg, &removable);
        let placement = placement_mii(&cons, mis.len());
        events.push(DiagEvent::MiiAttempt {
            round: decomposed.len(),
            n_mis: mis.len(),
            placement_ii: placement,
        });
        if let Some(ii) = placement {
            break (ii, mis, expand, cons);
        }
        if decomposed.len() >= cfg.max_decompositions {
            push_deps_event(events, range.as_ref(), &dep_stats);
            return Err(SlmsError::NoValidIi);
        }
        // Choose a victim: prefer MIs with loop-carried self dependences,
        // then fall back to sequential order (§5 footnote).
        let n = mis.len();
        let order: Vec<usize> = (0..n)
            .filter(|&k| ddg.has_self_carried(k))
            .chain((0..n).filter(|&k| !ddg.has_self_carried(k)))
            .collect();
        let mut progressed = false;
        for k in order {
            if let Some(t) = decompose::break_self_dep(&mut scratch, &mut body, k, &f.var, f.step) {
                decomposed.push(t.clone());
                events.push(DiagEvent::Decomposed {
                    round: decomposed.len(),
                    temp: t,
                });
                progressed = true;
                break;
            }
        }
        if !progressed {
            push_deps_event(events, range.as_ref(), &dep_stats);
            return Err(SlmsError::NoValidIi);
        }
    };

    mii_span.arg("rounds", decomposed.len() + 1);
    mii_span.arg("n_mis", mis.len());
    mii_span.arg("ii", ii);
    drop(mii_span);

    // Exact scheduling (optional): the heuristic fixes the placement to
    // the body's source order; the SAT-based exact scheduler searches all
    // MI orderings of the *same* decomposed body for the least II, proves
    // optimality, and reorders the body when it wins. The certificate is
    // relabeled into the emitted index space, so its witness is always
    // the identity order of what we actually emit.
    let heuristic_ii = ii;
    let mut ii = ii;
    let mut mis = mis;
    let mut expand = expand;
    let mut exact_info: Option<(Vec<usize>, slc_exact::OptimalityCertificate)> = None;
    if cfg.scheduler == SchedulerKind::Exact {
        let mut exact_span = tracer.span("slms", "slms.exact");
        let deps: Vec<slc_exact::Dep> = cons
            .iter()
            .map(|c| slc_exact::Dep {
                from: c.u,
                to: c.v,
                dist: c.d,
            })
            .collect();
        if let Some(r) = slc_exact::ExactScheduler::default().solve(&deps, mis.len(), ii) {
            let mut accepted = true;
            if r.reordered {
                // Re-derive the whole schedule on the permuted body; the
                // fixed-placement bound must reproduce the proven II.
                let permuted: Vec<Stmt> = r.order.iter().map(|&k| mis[k].stmt.clone()).collect();
                let new_mis = partition_mis(&permuted)?;
                let (new_ddg, _) =
                    build_loop_ddg(&new_mis, &f.var, f.step, range.as_ref(), &mut dep_stats);
                let new_expand = if cfg.expansion == Expansion::Off || symbolic {
                    vec![]
                } else {
                    expandable_vars(&permuted, &new_ddg, &f.var, &original)
                };
                let new_removable = |e: &slc_analysis::DepEdge| -> bool {
                    matches!(e.kind, DepKind::Anti | DepKind::Output)
                        && e.scalar
                            .as_deref()
                            .is_some_and(|s| new_expand.iter().any(|v| v.name == s))
                };
                let new_cons = constraints_of(&new_ddg, &new_removable);
                if placement_mii(&new_cons, new_mis.len()) == Some(r.ii) {
                    ii = r.ii;
                    mis = new_mis;
                    expand = new_expand;
                } else {
                    // The removable-dependence set can shift under the
                    // permutation; never emit an order whose placement
                    // bound disagrees with the proven II.
                    debug_assert!(false, "exact order does not reproduce the proven II");
                    accepted = false;
                }
            }
            if accepted {
                exact_span.arg("ii", r.ii);
                exact_span.arg("reordered", r.reordered);
                events.push(DiagEvent::ExactScheduled {
                    ii: r.ii,
                    heuristic_ii,
                    reordered: r.reordered,
                    warm_start: r.warm_start,
                    sat_decisions: r.stats.decisions,
                    sat_conflicts: r.stats.conflicts,
                    sat_propagations: r.stats.propagations,
                    sat_restarts: r.stats.restarts,
                    proof_clauses: r.certificate.proof.as_ref().map_or(0, |p| p.clauses.len()),
                });
                exact_info = Some((r.order, r.certificate));
            }
        }
    }

    // Emit.
    let mut emit_span = tracer.span("slms", "slms.emit");
    let mi_stmts: Vec<Stmt> = mis.iter().map(|m| m.stmt.clone()).collect();
    let out = if symbolic {
        emit_symbolic_guarded(f, &mi_stmts, ii)?
    } else {
        emit(&mut scratch, f, &mi_stmts, ii, cfg.expansion, &expand)?
    };
    emit_span.arg("unroll", out.unroll);
    emit_span.arg("max_offset", out.max_offset);
    drop(emit_span);

    // Cycle-based MII for the report (recomputed on the final body).
    let removable = |e: &slc_analysis::DepEdge| -> bool {
        matches!(e.kind, DepKind::Anti | DepKind::Output)
            && e.scalar
                .as_deref()
                .is_some_and(|s| expand.iter().any(|v| v.name == s))
    };
    let (final_ddg, dep_pairs) =
        build_loop_ddg(&mis, &f.var, f.step, range.as_ref(), &mut dep_stats);
    let cmii = cycles_mii(&constraints_of(&final_ddg, &removable), mis.len());
    push_deps_event(events, range.as_ref(), &dep_stats);
    events.push(DiagEvent::Scheduled {
        ii,
        cycles_mii: cmii,
        unroll: out.unroll,
        max_offset: out.max_offset,
    });

    *prog = scratch;
    let (exact_order, certificate) = match exact_info {
        Some((o, c)) => (Some(o), Some(c)),
        None => (None, None),
    };
    Ok(SlmsOutput {
        stmts: out.stmts,
        report: SlmsReport {
            ii,
            cycles_mii: cmii,
            n_mis: mis.len(),
            unroll: out.unroll,
            decomposed,
            renamed: out.renamed,
            expanded_arrays: out.expanded_arrays,
            if_converted,
            max_offset: out.max_offset,
            heuristic_ii: certificate.as_ref().map(|_| heuristic_ii),
            exact_order,
            certificate,
            dep_pairs,
        },
    })
}

/// Record the accumulated exact-engine counters in the decision trace (one
/// event per attempt; skipped when the legacy test ran instead).
fn push_deps_event(events: &mut Vec<DiagEvent>, range: Option<&LoopRange>, s: &DepStats) {
    if range.is_none() {
        return;
    }
    events.push(DiagEvent::DepsAnalyzed {
        pairs_decided: s.pairs_decided,
        gcd_hits: s.gcd_hits,
        banerjee_hits: s.banerjee_hits,
        sat_decided: s.sat_decided,
        widened_to_any: s.widened_to_any,
        certs_checked: s.certs_checked,
    });
}

/// Outcome of attempting SLMS on one loop inside a program.
#[derive(Debug, Clone)]
pub struct LoopOutcome {
    /// Stable identity of the loop (variable, pre-order index, body
    /// length); `id.to_string()` renders the legacy
    /// `for (i = …) [k stmts]` description.
    pub id: LoopId,
    /// `Ok(report)` when transformed, `Err(reason)` when left unchanged.
    pub result: Result<SlmsReport, SlmsError>,
    /// The decision trace behind the result (filter verdict with the
    /// measured ratio, MII rounds, decomposition retries, final schedule).
    pub trace: Vec<DiagEvent>,
}

/// Apply SLMS to every eligible innermost `for` loop of a program.
/// Returns the transformed program and the per-loop outcomes.
///
/// ```
/// use slc_core::{slms_program, SlmsConfig};
/// use slc_ast::{parse_program, to_paper_style};
///
/// let prog = parse_program(
///     "float a[64]; float b[64]; int i;\n\
///      for (i = 0; i < 60; i++) { a[i] = b[i] * 2.0; b[i] = b[i] + 1.0; }",
/// ).unwrap();
/// let (optimized, outcomes) = slms_program(&prog, &SlmsConfig::default());
/// assert!(outcomes[0].result.is_ok());
/// assert!(to_paper_style(&optimized).contains("||")); // parallel kernel rows
/// ```
pub fn slms_program(prog: &Program, cfg: &SlmsConfig) -> (Program, Vec<LoopOutcome>) {
    slms_program_spanned(prog, cfg, &Tracer::disabled())
}

/// [`slms_program`] with wall-clock spans: one span per visited innermost
/// loop (category `"slms"`, named after the [`LoopId`]) with the per-stage
/// child spans of [`slms_loop_spanned`] nested inside. The transformed
/// program and outcomes are byte-identical to [`slms_program`].
pub fn slms_program_spanned(
    prog: &Program,
    cfg: &SlmsConfig,
    tracer: &Tracer,
) -> (Program, Vec<LoopOutcome>) {
    let mut new_prog = prog.clone();
    let mut outcomes = Vec::new();
    let stmts = std::mem::take(&mut new_prog.stmts);
    let mut next_loop = 0usize;
    let new_stmts = transform_stmts(
        &mut new_prog,
        stmts,
        cfg,
        &mut outcomes,
        &mut next_loop,
        tracer,
    );
    new_prog.stmts = new_stmts;
    (new_prog, outcomes)
}

fn transform_stmts(
    prog: &mut Program,
    stmts: Vec<Stmt>,
    cfg: &SlmsConfig,
    outcomes: &mut Vec<LoopOutcome>,
    next_loop: &mut usize,
    tracer: &Tracer,
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::For(f) => {
                let is_innermost = !f.body.iter().any(Stmt::contains_loop);
                if is_innermost {
                    let id = LoopId::of(&f, *next_loop);
                    *next_loop += 1;
                    let stmt = Stmt::For(f);
                    let mut trace = Vec::new();
                    let mut span = tracer.span_dyn("slms", || format!("slms {}", id.verbose()));
                    match slms_loop_spanned(prog, &stmt, cfg, &mut trace, tracer) {
                        Ok(res) => {
                            span.arg("transformed", true);
                            outcomes.push(LoopOutcome {
                                id,
                                result: Ok(res.report),
                                trace,
                            });
                            out.extend(res.stmts);
                        }
                        Err(e) => {
                            span.arg("transformed", false);
                            outcomes.push(LoopOutcome {
                                id,
                                result: Err(e),
                                trace,
                            });
                            out.push(stmt);
                        }
                    }
                } else {
                    let mut f = f;
                    f.body = transform_stmts(prog, f.body, cfg, outcomes, next_loop, tracer);
                    out.push(Stmt::For(f));
                }
            }
            Stmt::Block(b) => {
                out.push(Stmt::Block(transform_stmts(
                    prog, b, cfg, outcomes, next_loop, tracer,
                )));
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                out.push(Stmt::If {
                    cond,
                    then_branch: transform_stmts(
                        prog,
                        then_branch,
                        cfg,
                        outcomes,
                        next_loop,
                        tracer,
                    ),
                    else_branch: transform_stmts(
                        prog,
                        else_branch,
                        cfg,
                        outcomes,
                        next_loop,
                        tracer,
                    ),
                });
            }
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::pretty::stmts_to_source;
    use slc_ast::{parse_program, to_source};

    fn cfg_nofilter() -> SlmsConfig {
        SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        }
    }

    #[test]
    fn intro_dot_product_ii1() {
        let mut prog = parse_program(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
        )
        .unwrap();
        let loop_stmt = prog.stmts[0].clone();
        let out = slms_loop(&mut prog, &loop_stmt, &SlmsConfig::default()).unwrap();
        assert_eq!(out.report.ii, 1);
        assert_eq!(out.report.n_mis, 2);
        let src = stmts_to_source(&out.stmts);
        assert!(src.contains("s = s + t"), "got:\n{src}");
    }

    #[test]
    fn single_mi_recurrence_decomposes_to_ii1() {
        // §3.2 worked example.
        let mut prog = parse_program(
            "float A[64]; int i;\n\
             for (i = 2; i < 60; i++) A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];",
        )
        .unwrap();
        let loop_stmt = prog.stmts[0].clone();
        let out = slms_loop(&mut prog, &loop_stmt, &cfg_nofilter()).unwrap();
        assert_eq!(out.report.ii, 1);
        assert_eq!(out.report.decomposed.len(), 1);
        assert_eq!(out.report.unroll, 2, "MVE must unroll twice");
        let src = stmts_to_source(&out.stmts);
        assert!(src.contains("reg1") && src.contains("reg2"), "got:\n{src}");
    }

    #[test]
    fn flow_only_recurrence_fails() {
        // A[i] = A[i-1]*2 — every load is flow-fed; no decomposition helps.
        let mut prog =
            parse_program("float A[64]; int i; for (i = 1; i < 60; i++) A[i] = A[i - 1] * 2.0;")
                .unwrap();
        let loop_stmt = prog.stmts[0].clone();
        let err = slms_loop(&mut prog, &loop_stmt, &cfg_nofilter()).unwrap_err();
        assert_eq!(err, SlmsError::NoValidIi);
        // no stray decls on failure
        assert_eq!(prog.decls.len(), 2);
    }

    #[test]
    fn swap_loop_is_filtered() {
        let mut prog = parse_program(
            "float X[8][8]; float CT; int k; int i; int j;\n\
             for (k = 0; k < 8; k++) { CT = X[k][i]; X[k][i] = X[k][j] * 2.0; X[k][j] = CT; }",
        )
        .unwrap();
        let loop_stmt = prog.stmts[0].clone();
        let err = slms_loop(&mut prog, &loop_stmt, &SlmsConfig::default()).unwrap_err();
        assert!(matches!(err, SlmsError::Filtered(_)));
    }

    #[test]
    fn max_loop_if_converted() {
        // §5 max example (without the manual reduction split).
        let mut prog = parse_program(
            "float arr[64]; float max; int i;\n\
             for (i = 1; i < 60; i++) if (max < arr[i]) max = arr[i];",
        )
        .unwrap();
        let loop_stmt = prog.stmts[0].clone();
        let out = slms_loop(&mut prog, &loop_stmt, &cfg_nofilter()).unwrap();
        assert!(out.report.if_converted);
        assert_eq!(out.report.ii, 1);
        let src = stmts_to_source(&out.stmts);
        assert!(src.contains("pred"), "got:\n{src}");
    }

    #[test]
    fn big_parallel_body_ii1_no_decomposition() {
        // §5 DU1/DU2/DU3-style loop: many MIs, no binding recurrence —
        // the paper reports MII = 1 without decomposition.
        let mut prog = parse_program(
            "float DU1[128]; float DU2[128]; float DU3[128];\n\
             float U1[256]; float U2[256]; float U3[256]; int ky;\n\
             for (ky = 1; ky < 100; ky++) {\n\
               DU1[ky] = U1[ky + 1] - U1[ky - 1];\n\
               DU2[ky] = U2[ky + 1] - U2[ky - 1];\n\
               DU3[ky] = U3[ky + 1] - U3[ky - 1];\n\
               U1[ky + 101] = U1[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];\n\
               U2[ky + 101] = U2[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];\n\
               U3[ky + 101] = U3[ky] + 2.0 * DU1[ky] + 2.0 * DU2[ky] + 2.0 * DU3[ky];\n\
             }",
        )
        .unwrap();
        let loop_stmt = prog.stmts[0].clone();
        let out = slms_loop(&mut prog, &loop_stmt, &cfg_nofilter()).unwrap();
        assert_eq!(out.report.ii, 1);
        assert_eq!(out.report.n_mis, 6);
        assert!(out.report.decomposed.is_empty());
    }

    #[test]
    fn exact_scheduler_certifies_optimal_heuristic() {
        // Dot product is already II = 1 in source order: the exact
        // scheduler must keep the identity order, emit byte-identical
        // statements, and attach a proof-free (II = MII) certificate.
        let src = "float A[32]; float B[32]; float s; float t; int i;\n\
                   for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }";
        let mut heur_prog = parse_program(src).unwrap();
        let loop_stmt = heur_prog.stmts[0].clone();
        let heur = slms_loop(&mut heur_prog, &loop_stmt, &SlmsConfig::default()).unwrap();

        let mut prog = parse_program(src).unwrap();
        let cfg = SlmsConfig {
            scheduler: SchedulerKind::Exact,
            ..SlmsConfig::default()
        };
        let out = slms_loop(&mut prog, &loop_stmt, &cfg).unwrap();
        assert_eq!(out.report.ii, 1);
        assert_eq!(out.report.heuristic_ii, Some(1));
        assert_eq!(out.report.exact_order.as_deref(), Some(&[0, 1][..]));
        let cert = out.report.certificate.as_ref().unwrap();
        assert_eq!((cert.ii, cert.mii, cert.n_mis), (1, 1, 2));
        assert!(cert.proof.is_none(), "II = MII needs no refutation");
        assert_eq!(
            stmts_to_source(&out.stmts),
            stmts_to_source(&heur.stmts),
            "certified-optimal loops must emit exactly the heuristic output"
        );
    }

    #[test]
    fn exact_scheduler_reorders_to_beat_source_order() {
        // The Z recurrence threads through the whole body in source order
        // (producer last, consumer first ⇒ placement needs II·1 ≥ 3), but
        // moving the consumer right after the producer achieves II = 1.
        let src = "float A[64]; float B[64]; float C[64]; float Z[64]; int i;\n\
                   for (i = 1; i < 60; i++) {\n\
                     A[i] = Z[i - 1];\n\
                     B[i] = B[i] + 1.0;\n\
                     C[i] = C[i] * 2.0;\n\
                     Z[i] = A[i] + 1.0;\n\
                   }";
        let mut heur_prog = parse_program(src).unwrap();
        let loop_stmt = heur_prog.stmts[0].clone();
        let heur = slms_loop(&mut heur_prog, &loop_stmt, &cfg_nofilter()).unwrap();
        assert_eq!(heur.report.ii, 3, "source order pays for the recurrence");
        assert_eq!(heur.report.certificate, None);

        let mut prog = parse_program(src).unwrap();
        let cfg = SlmsConfig {
            apply_filter: false,
            scheduler: SchedulerKind::Exact,
            ..SlmsConfig::default()
        };
        let mut trace = Vec::new();
        let out = slms_loop_traced(&mut prog, &loop_stmt, &cfg, &mut trace).unwrap();
        assert_eq!(out.report.ii, 1, "exact order hides the recurrence");
        assert_eq!(out.report.heuristic_ii, Some(3));
        let order = out.report.exact_order.as_ref().unwrap();
        assert_ne!(order.as_slice(), &[0, 1, 2, 3], "must actually reorder");
        let cert = out.report.certificate.as_ref().unwrap();
        assert_eq!((cert.ii, cert.mii), (1, 1));
        assert!(trace.iter().any(|e| matches!(
            e,
            DiagEvent::ExactScheduled {
                ii: 1,
                heuristic_ii: 3,
                reordered: true,
                ..
            }
        )));
        // the pipelined emission still covers all four statements
        let src_out = stmts_to_source(&out.stmts);
        for arr in ["A[", "B[", "C[", "Z["] {
            assert!(src_out.contains(arr), "missing {arr}:\n{src_out}");
        }
    }

    #[test]
    fn program_driver_transforms_innermost() {
        let prog = parse_program(
            "float A[16][32]; int i; int j;\n\
             for (j = 0; j < 16; j++) for (i = 0; i < 30; i++) A[j][i] = A[j][i] + 1.0;",
        )
        .unwrap();
        let (newp, outcomes) = slms_program(&prog, &cfg_nofilter());
        assert_eq!(outcomes.len(), 1);
        let printed = to_source(&newp);
        assert!(outcomes[0].result.is_ok(), "{:?}\n{printed}", outcomes[0]);
    }

    #[test]
    fn too_short_loops_untouched() {
        let mut prog = parse_program(
            "float A[8]; float B[8]; int i; for (i = 0; i < 1; i++) { A[i] = 1.0; B[i] = 2.0; }",
        )
        .unwrap();
        let loop_stmt = prog.stmts[0].clone();
        let err = slms_loop(&mut prog, &loop_stmt, &cfg_nofilter()).unwrap_err();
        assert!(matches!(err, SlmsError::TooFewIterations { .. }));
    }
}
