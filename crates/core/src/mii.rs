//! Minimum initiation interval computation (§3.6, §5).
//!
//! Two computations live here:
//!
//! * [`cycles_mii`] — the algorithm the paper describes: the **Iterative
//!   Shortest Path** method of Zaky/Allan over a `difMin` matrix. For a
//!   candidate II every dependence edge gets weight `delay − II·distance`
//!   (taking the max over the edge's several `<distance, delay>` pairs); the
//!   II is feasible iff the max-plus closure has no positive diagonal — i.e.
//!   no dependence cycle whose delays exceed `II ×` its distances. The first
//!   feasible `II < n` is the recurrence-constrained MII (SLMS uses no
//!   resource MII, §3.6).
//!
//! * [`placement_mii`] — the tighter bound required by SLMS's *fixed* kernel
//!   placement. SLMS does not schedule freely: MI`k` of iteration `j` lands
//!   at global row `II·j + k + const` of the modulo-scheduling table, with
//!   members of one row emitted in descending-`k` order. A dependence edge
//!   `u → v` with distance `d` is honoured iff
//!   `II·d + (v − u) > 0`, or `= 0` with `u > v` (same row, source printed
//!   first). Only back edges (`u > v`, `d ≥ 1`) constrain the II:
//!   `II ≥ ⌈(u − v) / d⌉`. The two bounds are *incomparable*: the cycle
//!   formula can demand more (it forces every dependence one full row apart,
//!   while the placement lets a source share a row with its sink when the
//!   descending-`k` order already serializes them — how the paper pipelines
//!   `t = A[i]*B[i]; s = s + t` at II = 1), and for irregular back edges the
//!   placement can demand more (it cannot rearrange rows). The emitter uses
//!   the placement value — it is exact for the code actually generated; the
//!   cycle value is reported alongside for comparison with the paper.
//!
//! Edges caused by *expandable scalars* (anti/output dependences that modulo
//! variable expansion or scalar expansion will rename away, §3.3–3.4) can be
//! excluded from both computations via the filter argument — this is what
//! lets the paper pipeline `t = A[i]*B[i]; s = s + t;` at `II = 1`.

#![allow(clippy::needless_range_loop)] // index loops mirror the papers' pseudo-code
use crate::delay::delay_of_edge;
use slc_analysis::{Ddg, DepEdge, Distance};

/// One scheduling constraint extracted from the DDG: edge `u → v` at
/// iteration distance `d` (delay per §3.5 is implied by positions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraint {
    /// Source MI position.
    pub u: usize,
    /// Sink MI position.
    pub v: usize,
    /// Iteration distance (`None` encodes an unknown distance).
    pub d: Option<i64>,
}

/// Extract constraints from the DDG, skipping edges for which `removable`
/// returns true (scalar dependences that expansion will rename away).
pub fn constraints_of(ddg: &Ddg, removable: &dyn Fn(&DepEdge) -> bool) -> Vec<Constraint> {
    let mut out = Vec::new();
    for e in &ddg.edges {
        if removable(e) {
            continue;
        }
        for d in &e.dists {
            out.push(Constraint {
                u: e.from,
                v: e.to,
                d: match d {
                    Distance::Const(k) => Some(*k),
                    Distance::Unknown => None,
                },
            });
        }
    }
    out
}

/// The MII imposed by SLMS's fixed kernel placement, or `None` when no
/// `II < n` satisfies every constraint (unknown distances always fail).
pub fn placement_mii(constraints: &[Constraint], n: usize) -> Option<i64> {
    if n < 2 {
        return None;
    }
    let mut ii: i64 = 1;
    for c in constraints {
        let d = c.d?;
        debug_assert!(d >= 0);
        if d == 0 {
            // construction guarantees u < v for distance-0 edges; the row
            // formula then always honours them.
            debug_assert!(c.u < c.v, "distance-0 edge must go forward");
            continue;
        }
        if c.u > c.v {
            let need = ((c.u - c.v) as i64 + d - 1) / d; // ceil((u-v)/d)
            ii = ii.max(need);
        }
        // forward and self edges with d >= 1 are satisfied by any II >= 1
    }
    if (ii as usize) < n {
        Some(ii)
    } else {
        None
    }
}

/// The paper's recurrence MII: smallest `II < n` with no positive-weight
/// dependence cycle, found by iterating the shortest-path (max-plus) closure
/// of the `difMin` matrix. Returns `None` when no such II exists or when a
/// distance is unknown.
pub fn cycles_mii(constraints: &[Constraint], n: usize) -> Option<i64> {
    if n < 2 {
        return None;
    }
    if constraints.iter().any(|c| c.d.is_none()) {
        return None;
    }
    'next_ii: for ii in 1..n as i64 {
        // difMin[u][v]: maximum over edges u→v of (delay − II·distance).
        const NEG: i64 = i64::MIN / 4;
        let mut w = vec![vec![NEG; n]; n];
        for c in constraints {
            let d = c.d.unwrap();
            let delay = delay_of_edge(&DepEdge {
                from: c.u,
                to: c.v,
                kind: slc_analysis::DepKind::Flow, // delay ignores kind
                dists: vec![],
                scalar: None,
            });
            let weight = delay - ii * d;
            if weight > w[c.u][c.v] {
                w[c.u][c.v] = weight;
            }
        }
        // max-plus Floyd–Warshall closure
        let mut dist = w.clone();
        for k in 0..n {
            for i in 0..n {
                if dist[i][k] == NEG {
                    continue;
                }
                for j in 0..n {
                    if dist[k][j] == NEG {
                        continue;
                    }
                    let cand = dist[i][k] + dist[k][j];
                    if cand > dist[i][j] {
                        dist[i][j] = cand;
                    }
                }
            }
        }
        for i in 0..n {
            if dist[i][i] > 0 {
                continue 'next_ii;
            }
        }
        return Some(ii);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(u: usize, v: usize, d: i64) -> Constraint {
        Constraint { u, v, d: Some(d) }
    }

    #[test]
    fn figure8_mii_is_two() {
        // MIs a..f = 0..5; cycles C1 (c→d→e→f→c, distances 0,2,0,2) and
        // C2 (c→d→f→c, distances 0,0,2). Delays per §3.5 are positional.
        let cons = vec![c(2, 3, 0), c(3, 4, 2), c(4, 5, 0), c(5, 2, 2), c(3, 5, 0)];
        assert_eq!(cycles_mii(&cons, 6), Some(2));
        assert_eq!(placement_mii(&cons, 6), Some(2));
    }

    #[test]
    fn intro_example_ii_one_with_expansion() {
        // t = A[i]*B[i]; s = s + t;  after dropping the scalar anti edge on
        // t (removable by MVE): flow t 0→1 d0, self flow s 1→1 d1.
        let cons = vec![c(0, 1, 0), c(1, 1, 1)];
        assert_eq!(placement_mii(&cons, 2), Some(1));
        assert_eq!(cycles_mii(&cons, 2), Some(1));
    }

    #[test]
    fn intro_example_anti_edge_kept_still_ii_one_for_placement() {
        // Keeping the anti edge 1→0 d1: placement allows II=1 because the
        // same-row order (descending k) reads before the overwrite; the
        // cycle formula (delays 1+1 over distance 1) would demand II=2 —
        // exactly the gap the paper bridges by renaming.
        let cons = vec![c(0, 1, 0), c(1, 0, 1)];
        assert_eq!(placement_mii(&cons, 2), Some(1));
        assert_eq!(cycles_mii(&cons, 2), None); // no II < 2 clears the cycle
    }

    #[test]
    fn back_edge_bound() {
        // back edge 5→2 at distance 1 forces II >= 3
        let cons = vec![c(5, 2, 1)];
        assert_eq!(placement_mii(&cons, 7), Some(3));
        // distance 3 relaxes it to II >= 1
        let cons = vec![c(5, 2, 3)];
        assert_eq!(placement_mii(&cons, 7), Some(1));
    }

    #[test]
    fn invalid_when_ii_reaches_n() {
        // back edge 1→0 distance 1 in a 2-MI loop needs II >= 1 — fine; but
        // distance-1 back edge spanning 3 positions in a 3-MI loop needs
        // II >= 2 < 3 — still fine; make one that needs II >= n.
        let cons = vec![c(1, 0, 1), c(2, 0, 1)];
        assert_eq!(placement_mii(&cons, 3), Some(2));
        let cons = vec![c(2, 0, 1), c(2, 1, 1), c(1, 0, 1)];
        // max need: (2-0)/1 = 2 < 3 → still valid
        assert_eq!(placement_mii(&cons, 3), Some(2));
        let cons = vec![c(3, 0, 1)];
        assert_eq!(placement_mii(&cons, 4), Some(3));
        assert_eq!(placement_mii(&cons, 3), None); // n=3: ii=3 not < n
    }

    #[test]
    fn unknown_distance_fails() {
        let cons = vec![Constraint {
            u: 0,
            v: 1,
            d: None,
        }];
        assert_eq!(placement_mii(&cons, 3), None);
        assert_eq!(cycles_mii(&cons, 3), None);
    }

    #[test]
    fn single_mi_has_no_valid_ii() {
        assert_eq!(placement_mii(&[], 1), None);
        assert_eq!(cycles_mii(&[], 1), None);
    }

    #[test]
    fn no_deps_gives_ii_one() {
        assert_eq!(placement_mii(&[], 6), Some(1));
        assert_eq!(cycles_mii(&[], 6), Some(1));
    }

    #[test]
    fn placement_and_cycles_incomparable() {
        // Placement below cycles: the 3-MI chain with a distance-1 back
        // edge shares the last row (source printed first), II = 2; the
        // cycle formula demands 3.
        let cons = vec![c(0, 1, 0), c(1, 2, 0), c(2, 0, 1)];
        assert_eq!(placement_mii(&cons, 3), Some(2));
        assert_eq!(cycles_mii(&cons, 3), None); // needs 3, not < n

        // Same shape with more MIs: cycles finds 3, placement still 2.
        assert_eq!(placement_mii(&cons, 6), Some(2));
        assert_eq!(cycles_mii(&cons, 6), Some(3));
    }
}
