//! Kernel/prologue/epilogue emission (§5 step 6) with modulo variable
//! expansion (§3.3) and scalar expansion (§3.4).
//!
//! Placement recap (see [`crate::mii`]): MI `k` of original iteration `j`
//! executes at global row `II·j + k + const`; the kernel therefore contains
//! each MI once, shifted forward by `off_k = ⌊(n−1−k)/II⌋` iterations, at
//! kernel row `k + II·off_k − (n − II)`, and rows list members in
//! descending-`k` order (exactly the table of Figure 1). The loop bound
//! shrinks by `max_k off_k` iterations; the missed leading instances form
//! the prologue and the missed trailing instances the epilogue.
//!
//! **Constant trip counts.** Emission requires constant `init`/`bound`: the
//! prologue/epilogue instances and — under MVE — the renaming residues are
//! then fully determined, and the emitted program is exactly semantically
//! equal to the input (verified by the interpreter-based equivalence tests).
//! The paper side-steps this by writing "complete last iteration" by hand
//! (Fig. 7); a production source-level compiler would guard symbolic trip
//! counts at run time.
//!
//! Renaming under MVE: variable `v` with `p_v` simultaneously-live versions
//! gets versions `v1 … v{p_v}`; the instance of original iteration `j` uses
//! version `j mod p_v`. The kernel is unrolled `U = lcm(p_v)` times so every
//! kernel copy sees a statically-known residue. Scalar expansion instead
//! rewrites `v` to `vArr[<value of the induction variable at iteration j>]`,
//! which needs no unrolling. Live-out values of renamed *original* variables
//! are restored after the epilogue, as is the induction variable's final
//! value, so the transformation is observationally identity.

use crate::SlmsError;
use slc_ast::visit::{shift_induction, simplify, substitute_scalar};
use slc_ast::{CmpOp, Expr, ForLoop, LValue, Program, Stmt, Ty};

/// How decomposition-/scalar-induced false dependences are removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Expansion {
    /// Keep scalars as-is; every scalar dependence constrains the placement.
    Off,
    /// Modulo variable expansion: unroll the kernel and rotate versions.
    #[default]
    Mve,
    /// Scalar expansion: replace the scalar by a per-iteration array cell.
    ScalarExpand,
}

/// A scalar selected for expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandVar {
    /// Variable name.
    pub name: String,
    /// Position of its (single, unconditional) defining MI.
    pub def_pos: usize,
    /// Maximal position of a reading MI (`def_pos` when unread).
    pub max_use_pos: usize,
    /// True when the variable existed before SLMS ran — its live-out value
    /// must be restored after the epilogue.
    pub restore: bool,
}

impl ExpandVar {
    /// Number of simultaneously live versions at initiation interval `ii`:
    /// `⌈lifetime / II⌉` with the source-level lifetime
    /// `max_use_pos − def_pos + 1` rows (Lam's rule applied to positions).
    pub fn versions(&self, ii: i64) -> i64 {
        let l = (self.max_use_pos - self.def_pos + 1) as i64;
        (l + ii - 1) / ii
    }
}

/// Result of emission.
#[derive(Debug, Clone)]
pub struct EmitOutput {
    /// Statements replacing the original loop statement.
    pub stmts: Vec<Stmt>,
    /// Kernel unroll factor applied for MVE (1 = none).
    pub unroll: i64,
    /// Renamed variables and their version names (MVE only).
    pub renamed: Vec<(String, Vec<String>)>,
    /// Scalars turned into arrays (scalar expansion only).
    pub expanded_arrays: Vec<(String, String)>,
    /// Iteration shift of MI 0 (pipeline depth in iterations).
    pub max_offset: i64,
}

fn lcm(a: i64, b: i64) -> i64 {
    fn gcd(mut a: i64, mut b: i64) -> i64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    a / gcd(a, b) * b
}

/// Per-variable renaming plan.
enum RenamePlan {
    Versions {
        name: String,
        vers: Vec<String>,
    },
    Array {
        name: String,
        arr: String,
        base: i64,
    },
}

/// Emit the software-pipelined replacement of loop `f` whose body has been
/// partitioned into `mis`, at initiation interval `ii`.
pub fn emit(
    prog: &mut Program,
    f: &ForLoop,
    mis: &[Stmt],
    ii: i64,
    expansion: Expansion,
    expand: &[ExpandVar],
) -> Result<EmitOutput, SlmsError> {
    let n = mis.len();
    if ii < 1 || (ii as usize) >= n {
        return Err(SlmsError::InvalidIi { ii, n_mis: n });
    }
    let t_count = f.trip_count().ok_or(SlmsError::SymbolicBounds)?;
    let init = f.init.const_int().ok_or(SlmsError::SymbolicBounds)?;
    let s = f.step;
    let off = |k: usize| ((n - 1 - k) as i64) / ii;
    let m = off(0);
    if t_count <= m {
        return Err(SlmsError::TooFewIterations {
            trip: t_count,
            needed: m + 1,
        });
    }
    let k_iters = t_count - m;

    // ---- renaming plans --------------------------------------------------
    let active: Vec<&ExpandVar> = if expansion == Expansion::Off {
        vec![]
    } else {
        expand.iter().filter(|v| v.versions(ii) >= 2).collect()
    };
    let mut unroll = 1i64;
    if expansion == Expansion::Mve {
        for v in &active {
            unroll = lcm(unroll, v.versions(ii));
        }
        if unroll > 16 {
            return Err(SlmsError::UnrollTooLarge(unroll));
        }
    }
    let mut plans: Vec<RenamePlan> = Vec::new();
    let mut renamed = Vec::new();
    let mut expanded_arrays = Vec::new();
    for v in &active {
        let ty = prog.decl(&v.name).map_or(Ty::Float, |d| d.ty);
        match expansion {
            Expansion::Mve => {
                let p = v.versions(ii);
                // Version base: strip trailing digits so a decomposition
                // temp `reg1` yields versions `reg1, reg2` like the paper,
                // not `reg11, reg12`.
                let stripped = v.name.trim_end_matches(|c: char| c.is_ascii_digit());
                let base = if stripped.is_empty() {
                    &v.name
                } else {
                    stripped
                };
                let mut vers = Vec::new();
                for q in 1..=p {
                    let cand = format!("{base}{q}");
                    let name = if cand == v.name || prog.decl(&cand).is_none() {
                        cand
                    } else {
                        prog.fresh_name(base)
                    };
                    prog.ensure_scalar(&name, ty);
                    vers.push(name);
                }
                renamed.push((v.name.clone(), vers.clone()));
                plans.push(RenamePlan::Versions {
                    name: v.name.clone(),
                    vers,
                });
            }
            Expansion::ScalarExpand => {
                let last = init + (t_count - 1) * s;
                let base = init.min(last);
                let size = (init.max(last) - base + 1) as usize;
                let arr = prog.fresh_name(&format!("{}Arr", v.name));
                prog.ensure_array(&arr, ty, vec![size]);
                expanded_arrays.push((v.name.clone(), arr.clone()));
                plans.push(RenamePlan::Array {
                    name: v.name.clone(),
                    arr,
                    base,
                });
            }
            Expansion::Off => unreachable!(),
        }
    }

    // Apply renaming to one instance. `j_residue`: original iteration index
    // (for constant instances) or `off + copy` (kernel — valid because the
    // kernel loop advances `unroll` iterations per pass and `p | unroll`).
    // `kernel_var_shift`: Some(shift) for kernel instances (subscripts are
    // var-relative), None for constant instances with known `j`.
    let rename = |stmt: &mut Stmt, j: i64, kernel_shift: Option<i64>| {
        for plan in &plans {
            match plan {
                RenamePlan::Versions { name, vers } => {
                    let p = vers.len() as i64;
                    let q = j.rem_euclid(p) as usize;
                    substitute_scalar(stmt, name, &Expr::Var(vers[q].clone()));
                }
                RenamePlan::Array { name, arr, base } => {
                    let sub = match kernel_shift {
                        Some(shift) => {
                            slc_ast::visit::add_const(Expr::Var(f.var.clone()), shift - base)
                        }
                        None => Expr::Int(init + j * s - base),
                    };
                    substitute_scalar(stmt, name, &Expr::Index(arr.clone(), vec![sub]));
                }
            }
        }
    };

    // Constant instance of MI k at original iteration j.
    let const_instance = |k: usize, j: i64| -> Stmt {
        let mut st = mis[k].clone();
        rename(&mut st, j, None);
        substitute_scalar(&mut st, &f.var, &Expr::Int(init + j * s));
        slc_ast::visit::map_exprs(&mut st, &mut simplify);
        st
    };

    let mut out: Vec<Stmt> = Vec::new();

    // ---- prologue --------------------------------------------------------
    for j in 0..m {
        for k in 0..n {
            if j < off(k) {
                out.push(const_instance(k, j));
            }
        }
    }

    // ---- kernel ----------------------------------------------------------
    let passes = k_iters / unroll;
    // rows: row(k) = k + ii*off(k) - (n - ii)
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); ii as usize];
    for k in 0..n {
        let r = (k as i64 + ii * off(k) - (n as i64 - ii)) as usize;
        rows[r].push(k);
    }
    for row in &mut rows {
        row.sort_unstable_by(|a, b| b.cmp(a)); // descending k
    }
    let mut body: Vec<Stmt> = Vec::new();
    for c in 0..unroll {
        for row in &rows {
            let mut members = Vec::new();
            for &k in row {
                let shift = (off(k) + c) * s;
                let mut st = mis[k].clone();
                // Shift first: the scalar-expansion replacement inserts
                // `var`-relative subscripts that must not be shifted again.
                shift_induction(&mut st, &f.var, shift);
                rename(&mut st, off(k) + c, Some(shift));
                members.push(st);
            }
            match members.len() {
                1 => body.push(members.remove(0)),
                _ => body.push(Stmt::Par(members)),
            }
        }
    }
    let strict = matches!(f.cmp, CmpOp::Lt | CmpOp::Gt);
    let bound_val = if strict {
        init + passes * unroll * s
    } else {
        init + (passes * unroll - 1) * s
    };
    out.push(Stmt::For(ForLoop {
        var: f.var.clone(),
        init: Expr::Int(init),
        cmp: f.cmp,
        bound: Expr::Int(bound_val),
        step: s * unroll,
        body,
    }));

    // ---- residual kernel iterations (MVE remainder), fully peeled ---------
    for jj in passes * unroll..k_iters {
        for row in &rows {
            let mut members = Vec::new();
            for &k in row {
                members.push(const_instance(k, jj + off(k)));
            }
            match members.len() {
                1 => out.push(members.remove(0)),
                _ => out.push(Stmt::Par(members)),
            }
        }
    }

    // ---- epilogue ---------------------------------------------------------
    for j in k_iters..t_count {
        for k in 0..n {
            if j >= k_iters + off(k) {
                out.push(const_instance(k, j));
            }
        }
    }

    // ---- restores ----------------------------------------------------------
    // Induction variable ends where the original loop left it.
    out.push(Stmt::assign(
        LValue::Var(f.var.clone()),
        Expr::Int(init + t_count * s),
    ));
    for (v, plan) in active.iter().zip(&plans) {
        if !v.restore {
            continue;
        }
        let last_j = t_count - 1;
        let rhs = match plan {
            RenamePlan::Versions { vers, .. } => {
                let p = vers.len() as i64;
                Expr::Var(vers[last_j.rem_euclid(p) as usize].clone())
            }
            RenamePlan::Array { arr, base, .. } => {
                Expr::Index(arr.clone(), vec![Expr::Int(init + last_j * s - base)])
            }
        };
        out.push(Stmt::assign(LValue::Var(v.name.clone()), rhs));
    }

    Ok(EmitOutput {
        stmts: out,
        unroll,
        renamed,
        expanded_arrays,
        max_offset: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slc_ast::pretty::stmts_to_source;
    use slc_ast::{parse_program, parse_stmts};

    fn mk_loop(src: &str, var: &str, init: i64, bound: i64) -> ForLoop {
        ForLoop {
            var: var.into(),
            init: Expr::Int(init),
            cmp: CmpOp::Lt,
            bound: Expr::Int(bound),
            step: 1,
            body: parse_stmts(src).unwrap(),
        }
    }

    #[test]
    fn intro_example_shape() {
        // t = A[i]*B[i]; s = s + t;  II = 1 → kernel [s = s + t || t = A[i+1]*B[i+1]]
        let mut prog = parse_program("float A[16]; float B[16]; float s; float t; int i;").unwrap();
        let f = mk_loop("t = A[i] * B[i]; s = s + t;", "i", 0, 10);
        let out = emit(&mut prog, &f, &f.body.clone(), 1, Expansion::Off, &[]).unwrap();
        let src = stmts_to_source(&out.stmts);
        // prologue: t = A[0]*B[0]
        assert!(src.contains("t = A[0] * B[0];"), "got:\n{src}");
        // kernel loop bound shrank by 1
        assert!(src.contains("for (i = 0; i < 9; i++)"), "got:\n{src}");
        // kernel: s=s+t before t=A[i+1]*B[i+1] in one par row
        assert!(src.contains("par {"), "got:\n{src}");
        let kpos = src.find("s = s + t;").unwrap();
        let tpos = src.find("t = A[i + 1] * B[i + 1];").unwrap();
        assert!(kpos < tpos, "row order wrong:\n{src}");
        // epilogue: final s = s + t
        assert_eq!(out.max_offset, 1);
    }

    #[test]
    fn offsets_and_rows_match_figure1() {
        // 6 MIs, II=2: first kernel row is [S4(i), S2(i+1), S0(i+2)].
        let mut prog = parse_program(
            "float A0[32]; float A1[32]; float A2[32]; float A3[32]; float A4[32]; float A5[32]; int i;",
        )
        .unwrap();
        let f = mk_loop(
            "A0[i] = 0.0; A1[i] = 1.0; A2[i] = 2.0; A3[i] = 3.0; A4[i] = 4.0; A5[i] = 5.0;",
            "i",
            0,
            10,
        );
        let out = emit(&mut prog, &f, &f.body.clone(), 2, Expansion::Off, &[]).unwrap();
        let src = stmts_to_source(&out.stmts);
        assert_eq!(out.max_offset, 2);
        // kernel row 0: A4[i], A2[i+1], A0[i+2] in that order
        let p4 = src.find("A4[i] = 4.0;").unwrap();
        let p2 = src.find("A2[i + 1] = 2.0;").unwrap();
        let p0 = src.find("A0[i + 2] = 0.0;").unwrap();
        assert!(p4 < p2 && p2 < p0, "got:\n{src}");
        // row 1: A5[i], A3[i+1], A1[i+2]
        assert!(src.contains("A5[i] = 5.0;"), "got:\n{src}");
        assert!(src.contains("A3[i + 1] = 3.0;"), "got:\n{src}");
        assert!(src.contains("A1[i + 2] = 1.0;"), "got:\n{src}");
    }

    #[test]
    fn mve_renames_with_two_versions() {
        // reg = A[i+2]; A[i] = A[i-1] + reg;  (post-decomposition shape)
        // def pos 0, use pos 1, II = 1 → p = 2, unroll 2 → reg1/reg2.
        let mut prog = parse_program("float A[64]; float reg; int i;").unwrap();
        let f = mk_loop("reg = A[i + 2]; A[i] = A[i - 1] + reg;", "i", 2, 32);
        let ev = ExpandVar {
            name: "reg".into(),
            def_pos: 0,
            max_use_pos: 1,
            restore: true,
        };
        let out = emit(&mut prog, &f, &f.body.clone(), 1, Expansion::Mve, &[ev]).unwrap();
        assert_eq!(out.unroll, 2);
        let src = stmts_to_source(&out.stmts);
        assert!(src.contains("reg1"), "got:\n{src}");
        assert!(src.contains("reg2"), "got:\n{src}");
        // unrolled kernel advances by 2
        assert!(src.contains("i += 2"), "got:\n{src}");
        // live-out restore present
        assert!(src.contains("reg = reg"), "got:\n{src}");
    }

    #[test]
    fn scalar_expansion_uses_array() {
        let mut prog = parse_program("float A[64]; float reg; int i;").unwrap();
        let f = mk_loop("reg = A[i + 2]; A[i] = A[i - 1] + reg;", "i", 2, 32);
        let ev = ExpandVar {
            name: "reg".into(),
            def_pos: 0,
            max_use_pos: 1,
            restore: true,
        };
        let out = emit(
            &mut prog,
            &f,
            &f.body.clone(),
            1,
            Expansion::ScalarExpand,
            &[ev],
        )
        .unwrap();
        assert_eq!(out.unroll, 1);
        let src = stmts_to_source(&out.stmts);
        assert!(src.contains("regArr1["), "got:\n{src}");
        assert!(prog.decl("regArr1").unwrap().is_array());
    }

    #[test]
    fn too_short_loop_rejected() {
        let mut prog = parse_program("float A[8]; float B[8]; int i;").unwrap();
        let f = mk_loop("A[i] = 0.0; B[i] = 1.0;", "i", 0, 1);
        let err = emit(&mut prog, &f, &f.body.clone(), 1, Expansion::Off, &[]).unwrap_err();
        assert!(matches!(err, SlmsError::TooFewIterations { .. }));
    }

    #[test]
    fn out_of_range_ii_rejected_structurally() {
        let mut prog = parse_program("float A[8]; float B[8]; int i;").unwrap();
        let f = mk_loop("A[i] = 0.0; B[i] = 1.0;", "i", 0, 8);
        let err = emit(&mut prog, &f, &f.body.clone(), 2, Expansion::Off, &[]).unwrap_err();
        assert_eq!(err, SlmsError::InvalidIi { ii: 2, n_mis: 2 });
        let err = emit(&mut prog, &f, &f.body.clone(), 0, Expansion::Off, &[]).unwrap_err();
        assert_eq!(err, SlmsError::InvalidIi { ii: 0, n_mis: 2 });
    }

    #[test]
    fn symbolic_bounds_rejected() {
        let mut prog = parse_program("float A[8]; float B[8]; int i; int n;").unwrap();
        let mut f = mk_loop("A[i] = 0.0; B[i] = 1.0;", "i", 0, 8);
        f.bound = Expr::Var("n".into());
        let err = emit(&mut prog, &f, &f.body.clone(), 1, Expansion::Off, &[]).unwrap_err();
        assert!(matches!(err, SlmsError::SymbolicBounds));
    }

    #[test]
    fn induction_final_value_restored() {
        let mut prog = parse_program("float A[8]; float B[8]; int i;").unwrap();
        let f = mk_loop("A[i] = 0.0; B[i] = 1.0;", "i", 0, 8);
        let out = emit(&mut prog, &f, &f.body.clone(), 1, Expansion::Off, &[]).unwrap();
        let src = stmts_to_source(&out.stmts);
        assert!(src.trim_end().ends_with("i = 8;"), "got:\n{src}");
    }
}
