//! Structured, explainable per-loop diagnostics.
//!
//! SLMS makes a chain of decisions per loop — filter, if-conversion, MII
//! iteration, decomposition retries, emission — and the §6 transformations
//! make one structural decision each. Solver-based schedulers (SMT/SAT
//! modulo scheduling) expose exactly this kind of infeasibility/decision
//! trace to let users debug why an II is or is not achievable; this module
//! is the source-level equivalent. Every decision is recorded as a
//! [`DiagEvent`] carrying the *computed numbers* (the measured `LS/(LS+AO)`
//! ratio, the per-round placement II, the decomposition victims), not a
//! pre-formatted string, so reports, the `slc explain` CLI mode, and tests
//! all render from the same data.
//!
//! The [`DiagSink`] groups events per pass (one [`PassDiag`] per pass of a
//! `PassPlan`; a bare [`slms_program`](crate::slms_program) call fills a
//! single implicit pass). Wall-clock per pass is recorded in the sink but
//! is *not* part of any canonical report — it flows into the batch engine's
//! non-deterministic timing sidecar only.

use crate::filter::FilterVerdict;
use crate::{LoopOutcome, SlmsError};

/// One recorded decision while transforming a single loop.
#[derive(Debug, Clone, PartialEq)]
pub enum DiagEvent {
    /// The §4 bad-case filter ran; the verdict carries the measured
    /// `LS/(LS+AO)` ratio (or arithmetic density) and the threshold.
    FilterChecked {
        /// verdict with measured numbers
        verdict: FilterVerdict,
    },
    /// Source-level if-conversion rewrote the body (§3.1).
    IfConverted,
    /// Symbolic bounds: the runtime-guarded, expansion-free path was taken.
    SymbolicGuard,
    /// One round of the §5 MII iteration: with `n_mis` multi-instructions
    /// the fixed-placement bound produced `placement_ii` (`None` = no
    /// `II < n_mis` exists at this body shape).
    MiiAttempt {
        /// decomposition round (0 = original body)
        round: usize,
        /// multi-instructions in the candidate body
        n_mis: usize,
        /// feasible placement II, if any
        placement_ii: Option<i64>,
    },
    /// A multi-instruction was decomposed to break a self dependence,
    /// introducing temporary `temp` (§5 step 5 retry).
    Decomposed {
        /// decomposition round that produced this split (1-based)
        round: usize,
        /// name of the introduced temporary
        temp: String,
    },
    /// The loop was scheduled and emitted.
    Scheduled {
        /// achieved initiation interval
        ii: i64,
        /// the paper's cycle-based MII, for comparison
        cycles_mii: Option<i64>,
        /// MVE kernel unroll factor (1 = none)
        unroll: i64,
        /// pipeline depth in iterations
        max_offset: i64,
    },
    /// The loop was left unchanged; the structured reason.
    Rejected {
        /// why SLMS declined
        error: SlmsError,
    },
    /// The static schedule verifier (`slc-verify`) checked this loop's
    /// emitted prologue/kernel/epilogue and discharged every obligation.
    Verified {
        /// number of obligations proved (dependence edges × distances,
        /// renaming residues, instance placements, …)
        obligations: usize,
    },
    /// The static schedule verifier found a violation; `rule` names the
    /// violated placement/dependence/renaming rule and `detail` carries the
    /// rendered evidence.
    VerifyViolation {
        /// short rule name (e.g. `dependence`, `mve-residue`)
        rule: String,
        /// rendered evidence for the violation
        detail: String,
    },
}

impl std::fmt::Display for DiagEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagEvent::FilterChecked { verdict } => match verdict {
                FilterVerdict::Pass => write!(f, "filter: {verdict}"),
                _ => write!(f, "filter: REJECTED — {verdict}"),
            },
            DiagEvent::IfConverted => write!(f, "if-conversion: compound conditional flattened"),
            DiagEvent::SymbolicGuard => {
                write!(f, "symbolic bounds: emitting runtime-guarded pipeline")
            }
            DiagEvent::MiiAttempt {
                round,
                n_mis,
                placement_ii,
            } => match placement_ii {
                Some(ii) => write!(f, "MII round {round}: {n_mis} MIs → placement II = {ii}"),
                None => write!(f, "MII round {round}: {n_mis} MIs → no valid II < {n_mis}"),
            },
            DiagEvent::Decomposed { round, temp } => {
                write!(
                    f,
                    "decomposition round {round}: split via temporary `{temp}`"
                )
            }
            DiagEvent::Scheduled {
                ii,
                cycles_mii,
                unroll,
                max_offset,
            } => {
                write!(f, "scheduled: II = {ii}")?;
                match cycles_mii {
                    Some(c) => write!(f, " (cycle-MII {c})")?,
                    None => write!(f, " (cycle-MII infeasible)")?,
                }
                write!(f, ", depth {max_offset}, unroll ×{unroll}")
            }
            DiagEvent::Rejected { error } => write!(f, "rejected: {error}"),
            DiagEvent::Verified { obligations } => {
                write!(f, "verified: {obligations} static obligations discharged")
            }
            DiagEvent::VerifyViolation { rule, detail } => {
                write!(f, "VERIFY VIOLATION [{rule}]: {detail}")
            }
        }
    }
}

/// Render the decision trace of one loop outcome as an indented block.
pub fn render_loop_trace(outcome: &LoopOutcome) -> String {
    let mut out = format!("{}\n", outcome.id.verbose());
    for ev in &outcome.trace {
        out.push_str(&format!("  {ev}\n"));
    }
    match &outcome.result {
        Ok(r) => out.push_str(&format!(
            "  ⇒ transformed: II = {} over {} MIs{}{}\n",
            r.ii,
            r.n_mis,
            if r.if_converted { ", if-converted" } else { "" },
            if r.decomposed.is_empty() {
                String::new()
            } else {
                format!(", decomposed {:?}", r.decomposed)
            },
        )),
        Err(e) => out.push_str(&format!("  ⇒ left unchanged: {e}\n")),
    }
    out
}

/// Diagnostics of one pass over the program.
#[derive(Debug, Clone, Default)]
pub struct PassDiag {
    /// pass name as rendered in the plan (e.g. `slms`, `fuse:0+1`)
    pub pass: String,
    /// per-loop outcomes with their decision traces (SLMS passes)
    pub loops: Vec<LoopOutcome>,
    /// free-form structural notes (transform passes)
    pub notes: Vec<String>,
    /// wall clock spent inside the pass (non-deterministic; sidecar only)
    pub elapsed_ns: u64,
}

/// Collector for the diagnostics of a whole pass plan.
#[derive(Debug, Clone, Default)]
pub struct DiagSink {
    /// one entry per executed pass, in plan order
    pub passes: Vec<PassDiag>,
}

impl DiagSink {
    /// Fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start recording a pass; returns the index for [`DiagSink::pass_mut`].
    pub fn begin_pass(&mut self, name: impl Into<String>) -> usize {
        self.passes.push(PassDiag {
            pass: name.into(),
            ..PassDiag::default()
        });
        self.passes.len() - 1
    }

    /// Mutable access to a pass diag opened by [`DiagSink::begin_pass`].
    pub fn pass_mut(&mut self, idx: usize) -> &mut PassDiag {
        &mut self.passes[idx]
    }

    /// All loop outcomes across every pass, in execution order.
    pub fn all_outcomes(&self) -> impl Iterator<Item = &LoopOutcome> {
        self.passes.iter().flat_map(|p| p.loops.iter())
    }

    /// Render the full human-readable decision trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.passes {
            out.push_str(&format!("── pass {} ──\n", p.pass));
            for n in &p.notes {
                out.push_str(&format!("  {n}\n"));
            }
            for o in &p.loops {
                out.push_str(&render_loop_trace(o));
            }
            if p.notes.is_empty() && p.loops.is_empty() {
                out.push_str("  (no loops visited)\n");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{slms_program, SlmsConfig};
    use slc_ast::parse_program;

    #[test]
    fn trace_records_filter_and_schedule() {
        let p = parse_program(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
        )
        .unwrap();
        let (_, outcomes) = slms_program(&p, &SlmsConfig::default());
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert!(matches!(
            o.trace.first(),
            Some(DiagEvent::FilterChecked {
                verdict: FilterVerdict::Pass
            })
        ));
        assert!(o.trace.iter().any(|e| matches!(
            e,
            DiagEvent::MiiAttempt {
                round: 0,
                n_mis: 2,
                placement_ii: Some(1)
            }
        )));
        assert!(o
            .trace
            .iter()
            .any(|e| matches!(e, DiagEvent::Scheduled { ii: 1, .. })));
        let text = render_loop_trace(o);
        assert!(text.contains("loop#0"), "{text}");
        assert!(text.contains("placement II = 1"), "{text}");
    }

    #[test]
    fn filtered_loop_trace_carries_ratio() {
        let p = parse_program(
            "float X[8][8]; float CT; int k; int i; int j;\n\
             for (k = 0; k < 8; k++) { CT = X[k][i]; X[k][i] = X[k][j] * 2.0; X[k][j] = CT; }",
        )
        .unwrap();
        let (_, outcomes) = slms_program(&p, &SlmsConfig::default());
        let o = &outcomes[0];
        assert!(o.result.is_err());
        let text = render_loop_trace(o);
        assert!(text.contains("memory-ref ratio"), "{text}");
        assert!(text.contains("0.85"), "{text}");
    }

    #[test]
    fn decomposition_rounds_traced() {
        let p = parse_program(
            "float A[64]; int i;\n\
             for (i = 2; i < 60; i++) A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];",
        )
        .unwrap();
        let cfg = SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        };
        let (_, outcomes) = slms_program(&p, &cfg);
        let o = &outcomes[0];
        assert!(o.result.is_ok());
        let attempts = o
            .trace
            .iter()
            .filter(|e| matches!(e, DiagEvent::MiiAttempt { .. }))
            .count();
        let splits = o
            .trace
            .iter()
            .filter(|e| matches!(e, DiagEvent::Decomposed { .. }))
            .count();
        assert!(splits >= 1, "{:?}", o.trace);
        assert_eq!(attempts, splits + 1, "{:?}", o.trace);
    }
}
