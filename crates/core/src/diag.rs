//! Structured, explainable per-loop diagnostics.
//!
//! SLMS makes a chain of decisions per loop — filter, if-conversion, MII
//! iteration, decomposition retries, emission — and the §6 transformations
//! make one structural decision each. Solver-based schedulers (SMT/SAT
//! modulo scheduling) expose exactly this kind of infeasibility/decision
//! trace to let users debug why an II is or is not achievable; this module
//! is the source-level equivalent. Every decision is recorded as a
//! [`DiagEvent`] carrying the *computed numbers* (the measured `LS/(LS+AO)`
//! ratio, the per-round placement II, the decomposition victims), not a
//! pre-formatted string, so reports, the `slc explain` CLI mode, and tests
//! all render from the same data.
//!
//! The [`DiagSink`] groups events per pass (one [`PassDiag`] per pass of a
//! `PassPlan`; a bare [`slms_program`](crate::slms_program) call fills a
//! single implicit pass). Wall-clock per pass is recorded in the sink but
//! is *not* part of any canonical report — it flows into the batch engine's
//! non-deterministic timing sidecar only.

use crate::filter::FilterVerdict;
use crate::{LoopOutcome, SlmsError};
use slc_trace::Json;

/// One recorded decision while transforming a single loop.
#[derive(Debug, Clone, PartialEq)]
pub enum DiagEvent {
    /// The §4 bad-case filter ran; the verdict carries the measured
    /// `LS/(LS+AO)` ratio (or arithmetic density) and the threshold.
    FilterChecked {
        /// verdict with measured numbers
        verdict: FilterVerdict,
    },
    /// Source-level if-conversion rewrote the body (§3.1).
    IfConverted,
    /// Symbolic bounds: the runtime-guarded, expansion-free path was taken.
    SymbolicGuard,
    /// One round of the §5 MII iteration: with `n_mis` multi-instructions
    /// the fixed-placement bound produced `placement_ii` (`None` = no
    /// `II < n_mis` exists at this body shape).
    MiiAttempt {
        /// decomposition round (0 = original body)
        round: usize,
        /// multi-instructions in the candidate body
        n_mis: usize,
        /// feasible placement II, if any
        placement_ii: Option<i64>,
    },
    /// A multi-instruction was decomposed to break a self dependence,
    /// introducing temporary `temp` (§5 step 5 retry).
    Decomposed {
        /// decomposition round that produced this split (1-based)
        round: usize,
        /// name of the introduced temporary
        temp: String,
    },
    /// The SAT-based exact scheduler ran on the final (decomposed) body:
    /// `ii` is proven optimal over all MI orderings, the heuristic's
    /// fixed placement achieved `heuristic_ii`, and the body was
    /// reordered when the exact order wins. Solver work is recorded as
    /// deterministic counts.
    ExactScheduled {
        /// proven-optimal II
        ii: i64,
        /// II of the heuristic (source-order) placement
        heuristic_ii: i64,
        /// whether the emitted body order differs from source order
        reordered: bool,
        /// whether the heuristic warm start closed the search without a
        /// single SAT call (heuristic II == MII)
        warm_start: bool,
        /// SAT branching decisions across the solve
        sat_decisions: u64,
        /// SAT conflicts analyzed
        sat_conflicts: u64,
        /// SAT unit propagations
        sat_propagations: u64,
        /// SAT restarts
        sat_restarts: u64,
        /// clauses in the attached infeasibility proof (0 = `II == MII`)
        proof_clauses: usize,
    },
    /// The exact dependence engine analyzed the loop's array access pairs
    /// (accumulated across every DDG build of the attempt — decomposition
    /// rounds, exact-scheduler rebuilds and the final body). Only emitted
    /// when the loop range was a compile-time constant; the counts feed the
    /// `deps.*` registry family.
    DepsAnalyzed {
        /// pairs given a definite verdict (not `Undecidable`)
        pairs_decided: u64,
        /// pairs refuted by the GCD divisibility layer
        gcd_hits: u64,
        /// pairs refuted by the Banerjee bounds layer
        banerjee_hits: u64,
        /// pairs whose verdict needed the SAT layer
        sat_decided: u64,
        /// dependent pairs widened past the distance cap
        widened_to_any: u64,
        /// certificates self-checked clean
        certs_checked: u64,
    },
    /// The loop was scheduled and emitted.
    Scheduled {
        /// achieved initiation interval
        ii: i64,
        /// the paper's cycle-based MII, for comparison
        cycles_mii: Option<i64>,
        /// MVE kernel unroll factor (1 = none)
        unroll: i64,
        /// pipeline depth in iterations
        max_offset: i64,
    },
    /// The loop was left unchanged; the structured reason.
    Rejected {
        /// why SLMS declined
        error: SlmsError,
    },
    /// The static schedule verifier (`slc-verify`) checked this loop's
    /// emitted prologue/kernel/epilogue and discharged every obligation.
    Verified {
        /// number of obligations proved (dependence edges × distances,
        /// renaming residues, instance placements, …)
        obligations: usize,
    },
    /// The static schedule verifier found a violation; `rule` names the
    /// violated placement/dependence/renaming rule and `detail` carries the
    /// rendered evidence.
    VerifyViolation {
        /// short rule name (e.g. `dependence`, `mve-residue`)
        rule: String,
        /// rendered evidence for the violation
        detail: String,
    },
}

impl DiagEvent {
    /// Machine-readable rendering with stable field names — the `"trace"`
    /// entries of `slc explain --json`. Every object carries an `"event"`
    /// discriminator (`filter_checked`, `if_converted`, `symbolic_guard`,
    /// `mii_attempt`, `decomposed`, `exact_scheduled`, `scheduled`,
    /// `rejected`, `verified`, `verify_violation`); the remaining members
    /// are the event's computed numbers under the same names as the
    /// struct fields.
    pub fn to_json(&self) -> Json {
        match self {
            DiagEvent::FilterChecked { verdict } => {
                let j = Json::obj()
                    .field("event", "filter_checked")
                    .field("passed", verdict.passed());
                match verdict {
                    FilterVerdict::Pass => j.field("verdict", "pass"),
                    FilterVerdict::MemRefRatio { ratio, threshold } => j
                        .field("verdict", "memref_ratio")
                        .field("ratio", *ratio)
                        .field("threshold", *threshold),
                    FilterVerdict::LowArithDensity { density, min } => j
                        .field("verdict", "low_arith_density")
                        .field("density", *density)
                        .field("min", *min),
                }
            }
            DiagEvent::IfConverted => Json::obj().field("event", "if_converted"),
            DiagEvent::SymbolicGuard => Json::obj().field("event", "symbolic_guard"),
            DiagEvent::MiiAttempt {
                round,
                n_mis,
                placement_ii,
            } => Json::obj()
                .field("event", "mii_attempt")
                .field("round", *round)
                .field("n_mis", *n_mis)
                .field("placement_ii", *placement_ii),
            DiagEvent::Decomposed { round, temp } => Json::obj()
                .field("event", "decomposed")
                .field("round", *round)
                .field("temp", temp.as_str()),
            DiagEvent::ExactScheduled {
                ii,
                heuristic_ii,
                reordered,
                warm_start,
                sat_decisions,
                sat_conflicts,
                sat_propagations,
                sat_restarts,
                proof_clauses,
            } => Json::obj()
                .field("event", "exact_scheduled")
                .field("ii", *ii)
                .field("heuristic_ii", *heuristic_ii)
                .field("reordered", *reordered)
                .field("warm_start", *warm_start)
                .field("sat_decisions", *sat_decisions)
                .field("sat_conflicts", *sat_conflicts)
                .field("sat_propagations", *sat_propagations)
                .field("sat_restarts", *sat_restarts)
                .field("proof_clauses", *proof_clauses),
            DiagEvent::DepsAnalyzed {
                pairs_decided,
                gcd_hits,
                banerjee_hits,
                sat_decided,
                widened_to_any,
                certs_checked,
            } => Json::obj()
                .field("event", "deps_analyzed")
                .field("pairs_decided", *pairs_decided)
                .field("gcd_hits", *gcd_hits)
                .field("banerjee_hits", *banerjee_hits)
                .field("sat_decided", *sat_decided)
                .field("widened_to_any", *widened_to_any)
                .field("certs_checked", *certs_checked),
            DiagEvent::Scheduled {
                ii,
                cycles_mii,
                unroll,
                max_offset,
            } => Json::obj()
                .field("event", "scheduled")
                .field("ii", *ii)
                .field("cycles_mii", *cycles_mii)
                .field("unroll", *unroll)
                .field("max_offset", *max_offset),
            DiagEvent::Rejected { error } => Json::obj()
                .field("event", "rejected")
                .field("error", slms_error_json(error)),
            DiagEvent::Verified { obligations } => Json::obj()
                .field("event", "verified")
                .field("obligations", *obligations),
            DiagEvent::VerifyViolation { rule, detail } => Json::obj()
                .field("event", "verify_violation")
                .field("rule", rule.as_str())
                .field("detail", detail.as_str()),
        }
    }
}

/// Machine-readable rejection reason: a stable `"kind"` discriminator plus
/// the human `"message"` (and the structured numbers where the variant
/// carries them).
pub fn slms_error_json(e: &SlmsError) -> Json {
    let kind = match e {
        SlmsError::NotAForLoop => "not_a_for_loop",
        SlmsError::Filtered(_) => "filtered",
        SlmsError::Analysis(_) => "analysis",
        SlmsError::VarWrittenInBody => "var_written_in_body",
        SlmsError::NoValidIi => "no_valid_ii",
        SlmsError::SymbolicBounds => "symbolic_bounds",
        SlmsError::TooFewIterations { .. } => "too_few_iterations",
        SlmsError::UnrollTooLarge(_) => "unroll_too_large",
        SlmsError::InvalidIi { .. } => "invalid_ii",
    };
    let j = Json::obj()
        .field("kind", kind)
        .field("message", e.to_string());
    match e {
        SlmsError::TooFewIterations { trip, needed } => {
            j.field("trip", *trip).field("needed", *needed)
        }
        SlmsError::UnrollTooLarge(u) => j.field("unroll", *u),
        SlmsError::InvalidIi { ii, n_mis } => j.field("ii", *ii).field("n_mis", *n_mis),
        _ => j,
    }
}

/// Machine-readable rendering of one loop outcome — the per-loop objects
/// `slc explain --json` emits (one JSON object per loop). Stable members:
/// `loop` ([`slc_ast::LoopId::to_json`]), `transformed`, `report` (schedule
/// statistics, `null` when rejected), `error` (structured reason, `null`
/// when transformed), `trace` (the [`DiagEvent::to_json`] list). When the
/// exact scheduler ran, `report` additionally carries `scheduler`
/// (`"exact"`), `heuristic_ii`, `exact_order`, and a `certificate`
/// summary; heuristic runs emit byte-identical JSON to before the exact
/// scheduler existed.
pub fn loop_outcome_json(o: &LoopOutcome) -> Json {
    let (report, error) = match &o.result {
        Ok(r) => {
            let renamed = r
                .renamed
                .iter()
                .map(|(var, versions)| {
                    Json::obj().field("var", var.as_str()).field(
                        "versions",
                        Json::Arr(versions.iter().map(|v| Json::from(v.as_str())).collect()),
                    )
                })
                .collect();
            let expanded = r
                .expanded_arrays
                .iter()
                .map(|(var, arr)| {
                    Json::obj()
                        .field("var", var.as_str())
                        .field("array", arr.as_str())
                })
                .collect();
            let report = Json::obj()
                .field("ii", r.ii)
                .field("cycles_mii", r.cycles_mii)
                .field("n_mis", r.n_mis)
                .field("unroll", r.unroll)
                .field("max_offset", r.max_offset)
                .field("if_converted", r.if_converted)
                .field(
                    "decomposed",
                    Json::Arr(
                        r.decomposed
                            .iter()
                            .map(|t| Json::from(t.as_str()))
                            .collect(),
                    ),
                )
                .field("renamed", Json::Arr(renamed))
                .field("expanded_arrays", Json::Arr(expanded));
            let report = match (&r.certificate, &r.exact_order, r.heuristic_ii) {
                (Some(cert), Some(order), Some(heuristic_ii)) => report
                    .field("scheduler", "exact")
                    .field("heuristic_ii", heuristic_ii)
                    .field(
                        "exact_order",
                        Json::Arr(order.iter().map(|&p| Json::from(p)).collect()),
                    )
                    .field(
                        "certificate",
                        Json::obj()
                            .field("ii", cert.ii)
                            .field("mii", cert.mii)
                            .field("n_mis", cert.n_mis)
                            .field(
                                "proof_clauses",
                                cert.proof.as_ref().map(|p| p.clauses.len() as i64),
                            ),
                    ),
                _ => report,
            };
            (report, Json::Null)
        }
        Err(e) => (Json::Null, slms_error_json(e)),
    };
    Json::obj()
        .field("loop", o.id.to_json())
        .field("transformed", o.result.is_ok())
        .field("report", report)
        .field("error", error)
        .field(
            "trace",
            Json::Arr(o.trace.iter().map(DiagEvent::to_json).collect()),
        )
}

impl std::fmt::Display for DiagEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagEvent::FilterChecked { verdict } => match verdict {
                FilterVerdict::Pass => write!(f, "filter: {verdict}"),
                _ => write!(f, "filter: REJECTED — {verdict}"),
            },
            DiagEvent::IfConverted => write!(f, "if-conversion: compound conditional flattened"),
            DiagEvent::SymbolicGuard => {
                write!(f, "symbolic bounds: emitting runtime-guarded pipeline")
            }
            DiagEvent::MiiAttempt {
                round,
                n_mis,
                placement_ii,
            } => match placement_ii {
                Some(ii) => write!(f, "MII round {round}: {n_mis} MIs → placement II = {ii}"),
                None => write!(f, "MII round {round}: {n_mis} MIs → no valid II < {n_mis}"),
            },
            DiagEvent::Decomposed { round, temp } => {
                write!(
                    f,
                    "decomposition round {round}: split via temporary `{temp}`"
                )
            }
            DiagEvent::ExactScheduled {
                ii,
                heuristic_ii,
                reordered,
                sat_conflicts,
                proof_clauses,
                ..
            } => {
                write!(f, "exact: II = {ii} proven optimal")?;
                if *reordered {
                    write!(f, " by reordering (heuristic II = {heuristic_ii})")?;
                } else {
                    write!(f, " (heuristic order kept)")?;
                }
                match proof_clauses {
                    0 => write!(f, ", II = MII"),
                    c => write!(
                        f,
                        ", {c}-clause refutation of II − 1 ({sat_conflicts} conflicts)"
                    ),
                }
            }
            DiagEvent::DepsAnalyzed {
                pairs_decided,
                gcd_hits,
                banerjee_hits,
                sat_decided,
                widened_to_any,
                certs_checked,
            } => {
                write!(
                    f,
                    "deps: {pairs_decided} pairs decided (gcd {gcd_hits}, banerjee \
                     {banerjee_hits}, sat {sat_decided}), {widened_to_any} widened, \
                     {certs_checked} certificates self-checked"
                )
            }
            DiagEvent::Scheduled {
                ii,
                cycles_mii,
                unroll,
                max_offset,
            } => {
                write!(f, "scheduled: II = {ii}")?;
                match cycles_mii {
                    Some(c) => write!(f, " (cycle-MII {c})")?,
                    None => write!(f, " (cycle-MII infeasible)")?,
                }
                write!(f, ", depth {max_offset}, unroll ×{unroll}")
            }
            DiagEvent::Rejected { error } => write!(f, "rejected: {error}"),
            DiagEvent::Verified { obligations } => {
                write!(f, "verified: {obligations} static obligations discharged")
            }
            DiagEvent::VerifyViolation { rule, detail } => {
                write!(f, "VERIFY VIOLATION [{rule}]: {detail}")
            }
        }
    }
}

/// Render the decision trace of one loop outcome as an indented block.
pub fn render_loop_trace(outcome: &LoopOutcome) -> String {
    let mut out = format!("{}\n", outcome.id.verbose());
    for ev in &outcome.trace {
        out.push_str(&format!("  {ev}\n"));
    }
    match &outcome.result {
        Ok(r) => out.push_str(&format!(
            "  ⇒ transformed: II = {} over {} MIs{}{}\n",
            r.ii,
            r.n_mis,
            if r.if_converted { ", if-converted" } else { "" },
            if r.decomposed.is_empty() {
                String::new()
            } else {
                format!(", decomposed {:?}", r.decomposed)
            },
        )),
        Err(e) => out.push_str(&format!("  ⇒ left unchanged: {e}\n")),
    }
    out
}

/// A typed sidecar artifact a pass attaches to its diagnostics — data
/// that is *about* the transformation but not part of the transformed
/// program, carried alongside the loop outcomes so downstream consumers
/// (the verifier, the batch gap report) need not re-run the pass.
/// Historically passes had no such channel and stuffed everything into
/// free-form `notes`; artifacts keep the payload structured.
#[derive(Debug, Clone, PartialEq)]
pub enum PassArtifact {
    /// An II-optimality certificate the exact scheduler produced for one
    /// loop, with the heuristic II for optimality-gap computation.
    Certificate {
        /// the loop the certificate covers
        loop_id: slc_ast::LoopId,
        /// II of the heuristic (source-order) placement
        heuristic_ii: i64,
        /// the re-checkable certificate
        certificate: slc_exact::OptimalityCertificate,
    },
}

impl PassArtifact {
    /// The optimality gap this artifact witnesses (heuristic II − proven
    /// optimal II; 0 = the heuristic was optimal).
    pub fn optimality_gap(&self) -> i64 {
        match self {
            PassArtifact::Certificate {
                heuristic_ii,
                certificate,
                ..
            } => heuristic_ii - certificate.ii,
        }
    }
}

/// Diagnostics of one pass over the program.
#[derive(Debug, Clone, Default)]
pub struct PassDiag {
    /// pass name as rendered in the plan (e.g. `slms`, `fuse:0+1`)
    pub pass: String,
    /// per-loop outcomes with their decision traces (SLMS passes)
    pub loops: Vec<LoopOutcome>,
    /// free-form structural notes (transform passes)
    pub notes: Vec<String>,
    /// typed sidecar artifacts (certificates, …)
    pub artifacts: Vec<PassArtifact>,
    /// wall clock spent inside the pass (non-deterministic; sidecar only)
    pub elapsed_ns: u64,
}

/// Collector for the diagnostics of a whole pass plan.
#[derive(Debug, Clone, Default)]
pub struct DiagSink {
    /// one entry per executed pass, in plan order
    pub passes: Vec<PassDiag>,
}

impl DiagSink {
    /// Fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start recording a pass; returns the index for [`DiagSink::pass_mut`].
    pub fn begin_pass(&mut self, name: impl Into<String>) -> usize {
        self.passes.push(PassDiag {
            pass: name.into(),
            ..PassDiag::default()
        });
        self.passes.len() - 1
    }

    /// Mutable access to a pass diag opened by [`DiagSink::begin_pass`].
    pub fn pass_mut(&mut self, idx: usize) -> &mut PassDiag {
        &mut self.passes[idx]
    }

    /// All loop outcomes across every pass, in execution order.
    pub fn all_outcomes(&self) -> impl Iterator<Item = &LoopOutcome> {
        self.passes.iter().flat_map(|p| p.loops.iter())
    }

    /// Render the full human-readable decision trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.passes {
            out.push_str(&format!("── pass {} ──\n", p.pass));
            for n in &p.notes {
                out.push_str(&format!("  {n}\n"));
            }
            for o in &p.loops {
                out.push_str(&render_loop_trace(o));
            }
            if p.notes.is_empty() && p.loops.is_empty() {
                out.push_str("  (no loops visited)\n");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{slms_program, SlmsConfig};
    use slc_ast::parse_program;

    #[test]
    fn trace_records_filter_and_schedule() {
        let p = parse_program(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
        )
        .unwrap();
        let (_, outcomes) = slms_program(&p, &SlmsConfig::default());
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert!(matches!(
            o.trace.first(),
            Some(DiagEvent::FilterChecked {
                verdict: FilterVerdict::Pass
            })
        ));
        assert!(o.trace.iter().any(|e| matches!(
            e,
            DiagEvent::MiiAttempt {
                round: 0,
                n_mis: 2,
                placement_ii: Some(1)
            }
        )));
        assert!(o
            .trace
            .iter()
            .any(|e| matches!(e, DiagEvent::Scheduled { ii: 1, .. })));
        let text = render_loop_trace(o);
        assert!(text.contains("loop#0"), "{text}");
        assert!(text.contains("placement II = 1"), "{text}");
    }

    #[test]
    fn filtered_loop_trace_carries_ratio() {
        let p = parse_program(
            "float X[8][8]; float CT; int k; int i; int j;\n\
             for (k = 0; k < 8; k++) { CT = X[k][i]; X[k][i] = X[k][j] * 2.0; X[k][j] = CT; }",
        )
        .unwrap();
        let (_, outcomes) = slms_program(&p, &SlmsConfig::default());
        let o = &outcomes[0];
        assert!(o.result.is_err());
        let text = render_loop_trace(o);
        assert!(text.contains("memory-ref ratio"), "{text}");
        assert!(text.contains("0.85"), "{text}");
    }

    #[test]
    fn loop_outcome_json_stable_fields() {
        let p = parse_program(
            "float A[32]; float B[32]; float s; float t; int i;\n\
             for (i = 0; i < 16; i++) { t = A[i] * B[i]; s = s + t; }",
        )
        .unwrap();
        let (_, outcomes) = slms_program(&p, &SlmsConfig::default());
        let j = loop_outcome_json(&outcomes[0]);
        let text = j.to_string();
        // round-trips through the parser
        assert_eq!(Json::parse(&text).unwrap(), j);
        assert_eq!(
            j.get("loop")
                .and_then(|l| l.get("var"))
                .and_then(Json::as_str),
            Some("i")
        );
        assert_eq!(j.get("transformed"), Some(&Json::Bool(true)));
        assert_eq!(
            j.get("report")
                .and_then(|r| r.get("ii"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(j.get("error"), Some(&Json::Null));
        let trace = j.get("trace").and_then(Json::as_arr).unwrap();
        assert_eq!(
            trace[0].get("event").and_then(Json::as_str),
            Some("filter_checked")
        );
        assert!(trace
            .iter()
            .any(|e| e.get("event").and_then(Json::as_str) == Some("scheduled")));

        // a rejected loop carries the structured error with a kind
        let bad = parse_program(
            "float X[8][8]; float CT; int k; int i; int j;\n\
             for (k = 0; k < 8; k++) { CT = X[k][i]; X[k][i] = X[k][j] * 2.0; X[k][j] = CT; }",
        )
        .unwrap();
        let (_, outcomes) = slms_program(&bad, &SlmsConfig::default());
        let j = loop_outcome_json(&outcomes[0]);
        assert_eq!(j.get("transformed"), Some(&Json::Bool(false)));
        assert_eq!(
            j.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("filtered")
        );
        assert_eq!(j.get("report"), Some(&Json::Null));
    }

    #[test]
    fn decomposition_rounds_traced() {
        let p = parse_program(
            "float A[64]; int i;\n\
             for (i = 2; i < 60; i++) A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];",
        )
        .unwrap();
        let cfg = SlmsConfig {
            apply_filter: false,
            ..SlmsConfig::default()
        };
        let (_, outcomes) = slms_program(&p, &cfg);
        let o = &outcomes[0];
        assert!(o.result.is_ok());
        let attempts = o
            .trace
            .iter()
            .filter(|e| matches!(e, DiagEvent::MiiAttempt { .. }))
            .count();
        let splits = o
            .trace
            .iter()
            .filter(|e| matches!(e, DiagEvent::Decomposed { .. }))
            .count();
        assert!(splits >= 1, "{:?}", o.trace);
        assert_eq!(attempts, splits + 1, "{:?}", o.trace);
    }
}
