//! Regenerate every figure/table of the paper and print the full report.
//!
//! ```bash
//! cargo run --release --example figures            # figure tables (stdout)
//! cargo run --release --example figures -- --batch # + full-matrix batch run,
//!                                                  #   writes BENCH_batch.json
//! ```

fn main() {
    println!("{}", slc_bench::harness::full_report());

    if std::env::args().any(|a| a == "--batch") {
        let cfg = slc::pipeline::BatchConfig::full_matrix();
        let report = slc::pipeline::run_batch(&cfg);
        eprintln!("batch: {}", report.summary());
        std::fs::write("BENCH_batch.json", report.to_json()).expect("write BENCH_batch.json");
        eprintln!("batch: wrote BENCH_batch.json");
    }
}
