//! Regenerate every figure/table of the paper and print the full report.
//!
//! ```bash
//! cargo run --release --example figures
//! ```

fn main() {
    println!("{}", slc_bench::harness::full_report());
}
