//! The embedded-systems experiment (§9.3): power dissipation and cycle
//! counts of SLMS'd loops on the ARM7TDMI-like scalar core, with the energy
//! model standing in for sim-panalyzer.
//!
//! ```bash
//! cargo run --release --example arm_power
//! ```

use slc::pipeline::{measure_workload, CompilerKind};
use slc::sim::presets::arm7tdmi;
use slc::slms::SlmsConfig;
use slc::workloads;

fn main() {
    let m = arm7tdmi();
    let cfg = SlmsConfig::default();
    let mut ws = workloads::livermore();
    ws.extend(workloads::linpack());
    ws.extend(workloads::stone());

    println!("ARM7TDMI-like core — SLMS effect on cycles and energy");
    println!(
        "{:<24} {:>12} {:>12} {:>9} {:>9} {:>10}",
        "loop", "base(cyc)", "slms(cyc)", "cycles×", "power×", "verdict"
    );
    let mut better_power = 0;
    let mut worse_power = 0;
    for w in &ws {
        let r = measure_workload(w, &m, CompilerKind::Optimizing, &cfg).unwrap();
        let verdict = if !r.transformed {
            "skipped"
        } else if r.power_ratio > 1.01 {
            better_power += 1;
            "saves"
        } else if r.power_ratio < 0.99 {
            worse_power += 1;
            "costs"
        } else {
            "neutral"
        };
        println!(
            "{:<24} {:>12} {:>12} {:>9.3} {:>9.3} {:>10}",
            r.name, r.base_cycles, r.slms_cycles, r.speedup, r.power_ratio, verdict
        );
    }
    println!(
        "\n{better_power} loops save energy, {worse_power} cost energy — \
         SLMS must be applied selectively on the scalar core (§9.3)."
    );
    println!(
        "The single-issue pipeline can only use the exposed parallelism to hide\n\
         memory latency; FP emulation blocks, so FP-heavy loops gain little."
    );
}
