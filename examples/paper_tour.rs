//! A guided tour of every worked example in the paper, §3 through §10:
//! each is transformed, printed in the paper's notation, and verified
//! against the reference interpreter.
//!
//! ```bash
//! cargo run --example paper_tour
//! ```

use slc::ast::{parse_program, to_paper_style, Program};
use slc::sim::astinterp::equivalent;
use slc::slms::extensions::unroll_while;
use slc::slms::{slms_program, Expansion, SlmsConfig};
use slc::transforms::{fuse, interchange};

fn cfg(expansion: Expansion) -> SlmsConfig {
    SlmsConfig {
        apply_filter: false,
        expansion,
        ..SlmsConfig::default()
    }
}

fn show(title: &str, prog: &Program, out: &Program) {
    println!("──────────────────────────────────────────────────");
    println!("{title}");
    println!("── before ──\n{}", to_paper_style(prog));
    println!("── after ──\n{}", to_paper_style(out));
    match equivalent(prog, out, &[7, 99]) {
        Ok(()) => println!("[verified bit-identical]\n"),
        Err(m) => panic!("{title}: semantics changed: {m:?}"),
    }
}

fn main() {
    // §1 intro: the canonical dot-product pipelining.
    let p = parse_program(
        "float A[40]; float B[40]; float s; float t; int i;\n\
         for (i = 0; i < 32; i++) { t = A[i] * B[i]; s = s + t; }",
    )
    .unwrap();
    let (out, _) = slms_program(&p, &cfg(Expansion::Mve));
    show("§1 — dot product, II = 1", &p, &out);

    // §3.2 decomposition: single-MI loop with a self dependence.
    let p = parse_program(
        "float A[48]; int i;\n\
         for (i = 2; i < 40; i++) A[i] = A[i - 1] + A[i - 2] + A[i + 1] + A[i + 2];",
    )
    .unwrap();
    let (out, oc) = slms_program(&p, &cfg(Expansion::Mve));
    let rep = oc[0].result.as_ref().unwrap();
    println!(
        "§3.2: decomposed {:?}, renamed {:?}",
        rep.decomposed, rep.renamed
    );
    show("§3.2 — decomposition + MVE (reg1/reg2)", &p, &out);

    // §3.4 scalar expansion instead of MVE.
    let (out, _) = slms_program(&p, &cfg(Expansion::ScalarExpand));
    show("§3.4 — same loop with scalar expansion (regArr)", &p, &out);

    // Figure 7: two loop variants expanded separately.
    let p = parse_program(
        "float A[48]; float B[48]; float C[48]; float reg; float scal; int i;\n\
         for (i = 1; i < 40; i++) { reg = A[i + 1]; A[i] = A[i - 1] + reg; \
          scal = B[i] / 2.0; C[i] = scal * 3.0; }",
    )
    .unwrap();
    let (out, oc) = slms_program(&p, &cfg(Expansion::Mve));
    println!(
        "fig 7: renamed {:?}",
        oc[0].result.as_ref().unwrap().renamed
    );
    show(
        "Fig 7 — MVE on two loop variants (reg1/reg2, scal1/scal2)",
        &p,
        &out,
    );

    // §5 max loop with if-conversion.
    let p = parse_program(
        "float arr[48]; float max; int i;\n\
         max = arr[0];\n\
         for (i = 1; i < 40; i++) if (max < arr[i]) max = arr[i];",
    )
    .unwrap();
    let (out, _) = slms_program(&p, &cfg(Expansion::Mve));
    show("§5 — max loop via source-level if-conversion", &p, &out);

    // §6 interchange enables SLMS.
    let p = parse_program(
        "float a[20][20]; float t; int i; int j;\n\
         for (j = 0; j < 16; j++) { for (i = 0; i < 16; i++) { t = a[i][j]; a[i][j + 1] = t; } }",
    )
    .unwrap();
    let swapped = interchange(&p.stmts[0]).unwrap();
    let mut q = p.clone();
    q.stmts = vec![swapped];
    let (out, oc) = slms_program(&q, &cfg(Expansion::Mve));
    println!(
        "§6 interchange: inner loop now SLMS-able: {}",
        oc.iter().any(|o| o.result.is_ok())
    );
    show(
        "§6 — loop interchange, then SLMS on the new inner loop",
        &p,
        &out,
    );

    // §6 fusion then SLMS (the II = 3 example).
    let p = parse_program(
        "float A[48]; float B[48]; float C[48]; float t; float q; int i;\n\
         for (i = 1; i < 40; i++) { t = A[i - 1]; B[i] = B[i] + t; A[i] = t + B[i]; }\n\
         for (i = 1; i < 40; i++) { q = C[i - 1]; B[i] = B[i] + q; C[i] = q * B[i]; }",
    )
    .unwrap();
    let fused = fuse(&p.stmts[0], &p.stmts[1]).unwrap();
    let mut q2 = p.clone();
    q2.stmts = vec![fused];
    let (out, oc) = slms_program(&q2, &cfg(Expansion::Mve));
    println!(
        "§6 fusion→SLMS: II = {:?}",
        oc[0].result.as_ref().map(|r| r.ii)
    );
    show("§6 — fusion, then SLMS of the fused body", &p, &out);

    // §8 user interaction: moving lw++ ahead lets MVE fire (II 2 → 1).
    let before = parse_program(
        "float x[96]; float y[96]; float temp; int lw; int j;\n\
         lw = 6;\n\
         for (j = 4; j < 60; j += 2) { temp -= x[lw] * y[j]; lw += 1; }",
    )
    .unwrap();
    let after_user = parse_program(
        "float x[96]; float y[96]; float temp; int lw; int j;\n\
         lw = 6;\n\
         for (j = 4; j < 60; j += 2) { lw += 1; temp -= x[lw - 1] * y[j]; }",
    )
    .unwrap();
    let (out_b, ob) = slms_program(&before, &cfg(Expansion::Mve));
    let (out_a, oa) = slms_program(&after_user, &cfg(Expansion::Mve));
    println!(
        "§8: II before user edit = {:?}, after = {:?}",
        ob.iter().find_map(|o| o.result.as_ref().ok().map(|r| r.ii)),
        oa.iter().find_map(|o| o.result.as_ref().ok().map(|r| r.ii)),
    );
    show("§8 — lw loop as written", &before, &out_b);
    show("§8 — lw loop after the user's edit", &after_user, &out_a);

    // §10 while-loop unrolling (shifted copy).
    let p = parse_program(
        "float a[128]; int i;\n\
         i = 0;\n\
         while (a[i + 2] > 0.0 && i < 100) { a[i] = a[i + 2]; i += 1; }",
    )
    .unwrap();
    let unrolled = unroll_while(p.stmts.last().unwrap(), 2).unwrap();
    let mut q3 = p.clone();
    let keep = q3.stmts.len() - 1;
    q3.stmts.truncate(keep);
    q3.stmts.push(unrolled);
    show("§10 — while-loop unrolling (shifted copy)", &p, &q3);

    // §9.2 FP-intensive loop: all five X[k+1] loads collapse to one reg.
    let p = parse_program(
        "float X[48]; int k;\n\
         for (k = 1; k < 40; k++) {\n\
           X[k] = X[k - 1] * X[k - 1] * X[k - 1] * X[k - 1] * X[k - 1] \
                + X[k + 1] * X[k + 1] * X[k + 1] * X[k + 1] * X[k + 1];\n\
         }",
    )
    .unwrap();
    let (out, _) = slms_program(&p, &cfg(Expansion::Mve));
    show("§9.2 — FP-intensive loop (reg1*reg1*…)", &p, &out);

    println!("tour complete — every transformation verified.");
}
