//! The source-level-compiler workflow of §2/§8: the user inspects the
//! tool's output, edits the source, and re-runs — watching the II and the
//! simulated cycle count respond. Every interaction is expressed as a
//! [`PassPlan`]: the menu of transformations the user picks from is data
//! (`slms:nofilter`, `fuse:0+1,slms:nofilter`, …), and the tool's
//! explanation of *why* a loop got its II comes from the same run.
//!
//! ```bash
//! cargo run --example interactive_slc
//! ```

use slc::ast::{parse_program, to_paper_style};
use slc::pipeline::{run, CompilerKind, PassManager, PassPlan};
use slc::sim::presets::itanium2;
use slc::slms::{render_loop_trace, SlmsConfig};

fn manager() -> PassManager {
    // the interactive sessions of §8 study loops the §4 filter would veto
    PassManager::new(SlmsConfig {
        apply_filter: false,
        ..SlmsConfig::default()
    })
}

/// Run `plan` over `src`; return simulated cycles and the first loop's II.
fn cycles(src: &str, plan: &str) -> (u64, Option<i64>) {
    let prog = parse_program(src).unwrap();
    let plan = PassPlan::parse(plan).unwrap();
    let (p, sink) = manager().run(&prog, &plan).expect("plan applies");
    let ii = sink
        .all_outcomes()
        .find_map(|o| o.result.as_ref().ok().map(|r| r.ii));
    let m = itanium2();
    (run(&p, &m, CompilerKind::Optimizing).unwrap().cycles(), ii)
}

/// Untransformed baseline.
fn plain_cycles(src: &str) -> u64 {
    let prog = parse_program(src).unwrap();
    run(&prog, &itanium2(), CompilerKind::Optimizing)
        .unwrap()
        .cycles()
}

fn main() {
    println!("Interactive SLC session (machine: Itanium-II-like, compiler: list scheduling)\n");

    // Step 1: the user submits the §8 loop as written.
    let v1 = "float x[4096]; float y[4096]; float temp; int lw; int j;\n\
              lw = 6;\n\
              for (j = 4; j < 4000; j += 2) { temp -= x[lw] * y[j]; lw += 1; }";
    let (c1, ii1) = cycles(v1, "slms");
    let c0 = plain_cycles(v1);
    println!("v1 (as written):        {c0} cycles plain, {c1} cycles after SLMS (II = {ii1:?})");

    // ...and asks the tool *why* — the same plan, explained.
    let prog1 = parse_program(v1).unwrap();
    let (_, sink1) = manager()
        .run(&prog1, &PassPlan::parse("slms").unwrap())
        .unwrap();
    println!("── why? ──");
    for o in sink1.all_outcomes() {
        print!("{}", render_loop_trace(o));
    }

    // Step 2: the tool reports the dependence cycle through `lw`; the user
    // moves the increment ahead of the use (the §8 edit), so MVE can
    // rename `lw`.
    let v2 = "float x[4096]; float y[4096]; float temp; int lw; int j;\n\
              lw = 6;\n\
              for (j = 4; j < 4000; j += 2) { lw += 1; temp -= x[lw - 1] * y[j]; }";
    let (c2, ii2) = cycles(v2, "slms");
    println!("\nv2 (lw++ hoisted):      {c2} cycles after SLMS (II = {ii2:?})");

    // Step 3: the user also decomposes the multiply-accumulate by hand,
    // exposing the load to the scheduler.
    let v3 = "float x[4096]; float y[4096]; float temp; float r; int lw; int j;\n\
              lw = 6;\n\
              for (j = 4; j < 4000; j += 2) { lw += 1; r = x[lw - 1] * y[j]; temp -= r; }";
    let (c3, ii3) = cycles(v3, "slms");
    println!("v3 (manual decompose):  {c3} cycles after SLMS (II = {ii3:?})");

    // Step 4: §2's register-lifetime hint — moving loads next to their uses
    // in a big body shortens lifetimes; show the before/after source the
    // SLC displays to the user.
    let before = "float A[128]; float B[128]; float C[128]; float D[128];\n\
                  float a; float b; float c; int i;\n\
                  for (i = 0; i < 120; i++) {\n\
                    a = A[i]; b = B[i]; c = C[i];\n\
                    D[i] = D[i] * 2.0;\n\
                    D[i] = D[i] + 1.0;\n\
                    A[i] = a + b + c;\n\
                  }";
    let after = "float A[128]; float B[128]; float C[128]; float D[128];\n\
                 float a; float b; float c; int i;\n\
                 for (i = 0; i < 120; i++) {\n\
                   D[i] = D[i] * 2.0;\n\
                   D[i] = D[i] + 1.0;\n\
                   a = A[i]; b = B[i]; c = C[i];\n\
                   A[i] = a + b + c;\n\
                 }";
    let pressure = |src: &str| {
        let prog = parse_program(src).unwrap();
        run(&prog, &itanium2(), CompilerKind::Weak)
            .unwrap()
            .compile
            .loops[0]
            .reg_pressure
    };
    let cb = plain_cycles(before);
    let ca = plain_cycles(after);
    println!(
        "\n§2 lifetime hint: {cb} → {ca} cycles; register pressure (unscheduled) {} → {}",
        pressure(before),
        pressure(after)
    );

    // Step 5: the §6 ordering study as two plans — the user compares
    // SLMS-per-loop with fuse-then-SLMS just by editing the plan string.
    let twin = "float a[2012]; float b[2012]; int i;\n\
                for (i = 1; i < 2000; i++) { a[i] = a[i - 1] * 2.0 + a[i + 1] * 2.0; }\n\
                for (i = 1; i < 2000; i++) { b[i] = b[i - 1] * 2.0 + b[i + 1] * 2.0; }";
    let (cs, _) = cycles(twin, "slms");
    let (cf, _) = cycles(twin, "fuse:0+1,slms");
    println!("\n§6 order study: plan `slms` = {cs} cycles, plan `fuse:0+1,slms` = {cf} cycles");

    // Show what the user actually sees for v2.
    let prog = parse_program(v2).unwrap();
    let (out, _) = manager()
        .run(&prog, &PassPlan::parse("slms").unwrap())
        .unwrap();
    println!(
        "\n── SLC output for v2 (paper notation) ──\n{}",
        to_paper_style(&out)
    );
}
