//! Quickstart: apply Source Level Modulo Scheduling to a loop and inspect
//! the result.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use slc::ast::{parse_program, to_paper_style, to_source};
use slc::sim::astinterp::equivalent;
use slc::slms::{slms_program, SlmsConfig};

fn main() {
    // The paper's introductory example: a dot product whose two statements
    // are serialized by the flow dependence on `t`.
    let src = "\
float A[1012]; float B[1012];
float s; float t;
int i;
for (i = 0; i < 1000; i++) {
    t = A[i] * B[i];
    s = s + t;
}";
    let prog = parse_program(src).expect("parses");
    println!("== original ==\n{}", to_source(&prog));

    // Run SLMS with the default configuration (§4 filter on, MVE on).
    let (optimized, outcomes) = slms_program(&prog, &SlmsConfig::default());
    for o in &outcomes {
        match &o.result {
            Ok(rep) => println!(
                "transformed {}: II = {}, {} MIs, pipeline depth {}, unroll ×{}",
                o.id, rep.ii, rep.n_mis, rep.max_offset, rep.unroll
            ),
            Err(e) => println!("skipped {}: {e}", o.id),
        }
    }

    // Paper-style rendering: kernel rows joined with `||`.
    println!(
        "\n== after SLMS (paper notation) ==\n{}",
        to_paper_style(&optimized)
    );

    // The transformation is observationally identity — verify it.
    match equivalent(&prog, &optimized, &[1, 2, 3]) {
        Ok(()) => println!("verified: transformed program is bit-identical on random inputs"),
        Err(m) => panic!("semantics changed: {m:?}"),
    }
}
